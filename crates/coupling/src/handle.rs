//! Handle-based collection access.
//!
//! [`DocumentSystem::collection`] and [`DocumentSystem::collection_mut`]
//! return RAII handles ([`CollectionRef`], [`CollectionMut`]) that deref
//! to [`Collection`], replacing the older closure-passing accessors
//! (`read_collection` / `with_collection` / `with_collection_and_db`).
//! A handle pins the collection registry for its lifetime — a shared
//! handle under the registry's read lock (any number of concurrent
//! holders; queries keep running), an exclusive handle under the write
//! lock (one holder; registered collections are briefly unavailable to
//! new queries).
//!
//! Both handles also expose the underlying [`Database`] via
//! [`CollectionRef::db`] / [`CollectionMut::db`], so call sites that
//! need database *and* collection — mixed queries, update propagation —
//! borrow both from one handle:
//!
//! ```
//! use coupling::prelude::*;
//!
//! let mut sys = DocumentSystem::new();
//! sys.load_sgml("<MMFDOC><PARA>telnet remote login</PARA></MMFDOC>").unwrap();
//! sys.create_collection("collPara", CollectionSetup::default()).unwrap();
//! sys.index_collection("collPara", "ACCESS p FROM p IN PARA").unwrap();
//!
//! let coll = sys.collection("collPara").unwrap();
//! assert_eq!(coll.get_irs_result("telnet").unwrap().len(), 1);
//! ```
//!
//! **Do not hold a handle across a call back into the same
//! [`DocumentSystem`]** (e.g. [`DocumentSystem::query`] while holding a
//! [`CollectionMut`]): queries acquire the registry read lock internally
//! and would deadlock against your write handle. Drop the handle first.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};

use parking_lot::{RwLockReadGuard, RwLockWriteGuard};

use oodb::Database;

use crate::collection::Collection;
use crate::error::{CouplingError, Result};
use crate::system::DocumentSystem;

/// Shared (read) handle to one registered collection.
///
/// Derefs to [`Collection`]; holds the registry read lock, so any number
/// of `CollectionRef`s — and concurrent queries — coexist.
pub struct CollectionRef<'a> {
    db: &'a Database,
    guard: RwLockReadGuard<'a, HashMap<String, Collection>>,
    name: String,
}

impl<'a> CollectionRef<'a> {
    /// The underlying database. The returned reference is independent of
    /// the handle borrow, so `coll.some_query(coll.db())` type call
    /// shapes work without borrow gymnastics.
    pub fn db(&self) -> &'a Database {
        self.db
    }
}

impl Deref for CollectionRef<'_> {
    type Target = Collection;

    fn deref(&self) -> &Collection {
        self.guard
            .get(&self.name)
            .expect("existence verified at handle construction")
    }
}

impl std::fmt::Debug for CollectionRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectionRef")
            .field("name", &self.name)
            .finish()
    }
}

/// Exclusive (write) handle to one registered collection.
///
/// Derefs mutably to [`Collection`]; holds the registry write lock, so
/// it is exclusive against every other handle *and* against queries.
pub struct CollectionMut<'a> {
    db: &'a Database,
    guard: RwLockWriteGuard<'a, HashMap<String, Collection>>,
    name: String,
}

impl<'a> CollectionMut<'a> {
    /// The underlying database (shared — the registry lock does not
    /// guard the database, whose mutation goes through `&mut
    /// DocumentSystem`). Independent of the handle borrow, so
    /// `coll.index_objects(coll.db(), spec)` compiles.
    pub fn db(&self) -> &'a Database {
        self.db
    }
}

impl Deref for CollectionMut<'_> {
    type Target = Collection;

    fn deref(&self) -> &Collection {
        self.guard
            .get(&self.name)
            .expect("existence verified at handle construction")
    }
}

impl DerefMut for CollectionMut<'_> {
    fn deref_mut(&mut self) -> &mut Collection {
        self.guard
            .get_mut(&self.name)
            .expect("existence verified at handle construction")
    }
}

impl std::fmt::Debug for CollectionMut<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectionMut")
            .field("name", &self.name)
            .finish()
    }
}

impl DocumentSystem {
    /// A shared handle to collection `name`. Takes the registry read
    /// lock for the handle's lifetime; queries continue concurrently.
    pub fn collection(&self, name: &str) -> Result<CollectionRef<'_>> {
        let guard = self.registry().read();
        if !guard.contains_key(name) {
            return Err(CouplingError::UnknownCollection(name.to_string()));
        }
        Ok(CollectionRef {
            db: self.db(),
            guard,
            name: name.to_string(),
        })
    }

    /// An exclusive handle to collection `name`. Takes the registry
    /// write lock for the handle's lifetime.
    pub fn collection_mut(&self, name: &str) -> Result<CollectionMut<'_>> {
        let guard = self.registry().write();
        if !guard.contains_key(name) {
            return Err(CouplingError::UnknownCollection(name.to_string()));
        }
        Ok(CollectionMut {
            db: self.db(),
            guard,
            name: name.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionSetup;

    fn loaded_system() -> DocumentSystem {
        let mut sys = DocumentSystem::new();
        sys.load_sgml(
            "<MMFDOC><DOCTITLE>Telnet</DOCTITLE><PARA>telnet is a protocol</PARA>\
             <PARA>telnet enables remote login</PARA></MMFDOC>",
        )
        .unwrap();
        sys.create_collection("collPara", CollectionSetup::default())
            .unwrap();
        sys.index_collection("collPara", "ACCESS p FROM p IN PARA")
            .unwrap();
        sys
    }

    #[test]
    fn shared_handles_coexist_and_query() {
        let sys = loaded_system();
        let a = sys.collection("collPara").unwrap();
        let b = sys.collection("collPara").unwrap();
        assert_eq!(a.get_irs_result("telnet").unwrap().len(), 2);
        assert_eq!(b.len(), a.len());
        assert!(format!("{a:?}").contains("collPara"));
    }

    #[test]
    fn mut_handle_gives_database_access_alongside() {
        let sys = loaded_system();
        let mut coll = sys.collection_mut("collPara").unwrap();
        let db = coll.db();
        let n = coll.index_objects(db, "ACCESS p FROM p IN PARA").unwrap();
        assert_eq!(n, 2);
        assert!(format!("{coll:?}").contains("collPara"));
    }

    #[test]
    fn unknown_names_error_with_not_found_kind() {
        let sys = loaded_system();
        let err = sys.collection("ghost").unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::NotFound);
        let err = sys.collection_mut("ghost").unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::NotFound);
    }
}
