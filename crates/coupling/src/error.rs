//! Error type spanning both coupled systems.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CouplingError>;

/// Errors raised by the coupling.
#[derive(Debug)]
pub enum CouplingError {
    /// The IRS side failed.
    Irs(irs::IrsError),
    /// The OODBMS side failed.
    Db(oodb::DbError),
    /// SGML processing failed.
    Sgml(sgml::SgmlError),
    /// A collection name is not registered.
    UnknownCollection(String),
    /// A collection name is already registered.
    DuplicateCollection(String),
    /// A specification query returned something other than objects.
    BadSpecQuery(String),
    /// A configuration cannot be serialised (e.g. a custom `getText`
    /// closure).
    NotPersistable(String),
}

impl CouplingError {
    /// True for errors a retry or a stale-read fallback can be expected
    /// to resolve — currently exactly a transient IRS failure (see
    /// [`irs::IrsError::is_transient`]).
    pub fn is_transient(&self) -> bool {
        matches!(self, CouplingError::Irs(e) if e.is_transient())
    }
}

impl fmt::Display for CouplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CouplingError::Irs(e) => write!(f, "IRS error: {e}"),
            CouplingError::Db(e) => write!(f, "OODBMS error: {e}"),
            CouplingError::Sgml(e) => write!(f, "SGML error: {e}"),
            CouplingError::UnknownCollection(n) => write!(f, "unknown collection {n:?}"),
            CouplingError::DuplicateCollection(n) => write!(f, "duplicate collection {n:?}"),
            CouplingError::BadSpecQuery(why) => write!(f, "bad specification query: {why}"),
            CouplingError::NotPersistable(what) => {
                write!(f, "configuration cannot be persisted: {what}")
            }
        }
    }
}

impl std::error::Error for CouplingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CouplingError::Irs(e) => Some(e),
            CouplingError::Db(e) => Some(e),
            CouplingError::Sgml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<irs::IrsError> for CouplingError {
    fn from(e: irs::IrsError) -> Self {
        CouplingError::Irs(e)
    }
}

impl From<oodb::DbError> for CouplingError {
    fn from(e: oodb::DbError) -> Self {
        CouplingError::Db(e)
    }
}

impl From<sgml::SgmlError> for CouplingError {
    fn from(e: sgml::SgmlError) -> Self {
        CouplingError::Sgml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CouplingError = oodb::DbError::UnknownClass("X".into()).into();
        assert!(e.to_string().contains("OODBMS"));
        let e: CouplingError = irs::IrsError::UnknownDocument("k".into()).into();
        assert!(e.to_string().contains("IRS"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CouplingError::UnknownCollection("coll".into());
        assert!(e.to_string().contains("coll"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
