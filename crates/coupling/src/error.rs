//! Error type spanning both coupled systems.
//!
//! Every fallible operation in the workspace surfaces as one
//! [`CouplingError`] (aliased [`Error`]), converted `From` the per-crate
//! error types. Callers that need to *act* on a failure — a serving
//! layer mapping errors onto responses, a client deciding whether to
//! retry — should branch on [`CouplingError::kind`] rather than matching
//! variants or string-matching messages: [`ErrorKind`] is the stable,
//! coarse classification; the variants underneath may grow.

use std::fmt;
use std::time::Duration;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CouplingError>;

/// Alias for [`CouplingError`] — the unified error type of the coupled
/// system (`coupling::Error` reads naturally at call sites that
/// `use coupling::prelude::*`).
pub type Error = CouplingError;

/// Stable, coarse classification of a [`CouplingError`].
///
/// The serving layer maps errors to responses by kind; tests assert on
/// kinds. New error variants may be added at any time, but each maps to
/// one of these kinds (with [`ErrorKind::Other`] as the catch-all), so
/// matching on `kind()` stays exhaustive and future-proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A named thing (collection, document, class, object, method) does
    /// not exist.
    NotFound,
    /// The request was rejected by admission control — a bounded queue
    /// was full, or the server is shutting down. Retrying later (with
    /// backoff) is reasonable.
    Overloaded,
    /// A per-request deadline expired before the request was served.
    Timeout,
    /// The IRS is unavailable (outage, injected fault, open circuit
    /// breaker) and retries/stale fallback could not mask it.
    IrsDown,
    /// An underlying I/O failure (persistence, journal, corrupt files).
    Io,
    /// Query or document text failed to parse, or a specification was
    /// malformed.
    Parse,
    /// Everything else (duplicate names, misuse of an API, …).
    Other,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::NotFound => "not-found",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Timeout => "timeout",
            ErrorKind::IrsDown => "irs-down",
            ErrorKind::Io => "io",
            ErrorKind::Parse => "parse",
            ErrorKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Errors raised by the coupling.
#[derive(Debug)]
pub enum CouplingError {
    /// The IRS side failed.
    Irs(irs::IrsError),
    /// The OODBMS side failed.
    Db(oodb::DbError),
    /// SGML processing failed.
    Sgml(sgml::SgmlError),
    /// A collection name is not registered.
    UnknownCollection(String),
    /// A collection name is already registered.
    DuplicateCollection(String),
    /// A specification query returned something other than objects.
    BadSpecQuery(String),
    /// A configuration cannot be serialised (e.g. a custom `getText`
    /// closure).
    NotPersistable(String),
    /// A bounded request queue was full; carries the queue capacity.
    Overloaded(usize),
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// A per-request deadline expired; carries how long the request had
    /// waited when the deadline was enforced.
    Timeout(Duration),
    /// A remote replica call failed. The failure crossed a process
    /// boundary, so only its wire-level classification survives — the
    /// stored [`ErrorKind`] is authoritative and [`CouplingError::kind`]
    /// returns it unchanged.
    Remote {
        /// Classification the transport derived from the wire status
        /// (or from the local I/O failure).
        kind: ErrorKind,
        /// Human-readable detail, including which replica failed.
        message: String,
    },
    /// No task with the given id exists in the task ledger.
    UnknownTask(u64),
    /// An update task failed during execution. The original error was
    /// consumed recording the failure in the task ledger; its
    /// classification and display form survive here, so
    /// [`CouplingError::kind`] still routes correctly.
    TaskFailed {
        /// Classification of the underlying execution error.
        kind: ErrorKind,
        /// Display form of the underlying execution error.
        message: String,
    },
}

impl CouplingError {
    /// True for errors a retry or a stale-read fallback can be expected
    /// to resolve — a transient IRS failure (see
    /// [`irs::IrsError::is_transient`]), or a remote replica failure
    /// whose classification is infrastructural (the replica or the
    /// network, not the request itself).
    pub fn is_transient(&self) -> bool {
        match self {
            CouplingError::Irs(e) => e.is_transient(),
            CouplingError::Remote { kind, .. } => matches!(
                kind,
                ErrorKind::IrsDown | ErrorKind::Io | ErrorKind::Timeout | ErrorKind::Overloaded
            ),
            _ => false,
        }
    }

    /// The stable classification of this error (see [`ErrorKind`]).
    pub fn kind(&self) -> ErrorKind {
        match self {
            CouplingError::Irs(e) => match e {
                irs::IrsError::Unavailable(_) => ErrorKind::IrsDown,
                irs::IrsError::QueryParse { .. } => ErrorKind::Parse,
                irs::IrsError::UnknownDocument(_) => ErrorKind::NotFound,
                irs::IrsError::DuplicateDocument(_) | irs::IrsError::ReadOnly(_) => {
                    ErrorKind::Other
                }
                irs::IrsError::CorruptIndex(_) | irs::IrsError::Io(_) => ErrorKind::Io,
            },
            CouplingError::Db(e) => match e {
                oodb::DbError::UnknownClass(_)
                | oodb::DbError::UnknownObject(_)
                | oodb::DbError::UnknownMethod(_) => ErrorKind::NotFound,
                oodb::DbError::QueryParse { .. } => ErrorKind::Parse,
                oodb::DbError::Corrupt(_) | oodb::DbError::Io(_) => ErrorKind::Io,
                // getIRSValue failures inside query evaluation surface as
                // QueryEval with the IRS message embedded; without
                // structure we classify them conservatively.
                _ => ErrorKind::Other,
            },
            CouplingError::Sgml(_) => ErrorKind::Parse,
            CouplingError::UnknownCollection(_) => ErrorKind::NotFound,
            CouplingError::DuplicateCollection(_) => ErrorKind::Other,
            CouplingError::BadSpecQuery(_) => ErrorKind::Parse,
            CouplingError::NotPersistable(_) => ErrorKind::Other,
            CouplingError::Overloaded(_) | CouplingError::ShuttingDown => ErrorKind::Overloaded,
            CouplingError::Timeout(_) => ErrorKind::Timeout,
            CouplingError::Remote { kind, .. } => *kind,
            CouplingError::UnknownTask(_) => ErrorKind::NotFound,
            CouplingError::TaskFailed { kind, .. } => *kind,
        }
    }
}

impl fmt::Display for CouplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CouplingError::Irs(e) => write!(f, "IRS error: {e}"),
            CouplingError::Db(e) => write!(f, "OODBMS error: {e}"),
            CouplingError::Sgml(e) => write!(f, "SGML error: {e}"),
            CouplingError::UnknownCollection(n) => write!(f, "unknown collection {n:?}"),
            CouplingError::DuplicateCollection(n) => write!(f, "duplicate collection {n:?}"),
            CouplingError::BadSpecQuery(why) => write!(f, "bad specification query: {why}"),
            CouplingError::NotPersistable(what) => {
                write!(f, "configuration cannot be persisted: {what}")
            }
            CouplingError::Overloaded(cap) => {
                write!(f, "overloaded: request queue at capacity {cap}")
            }
            CouplingError::ShuttingDown => write!(f, "server is shutting down"),
            CouplingError::Timeout(waited) => {
                write!(f, "request deadline expired after {waited:?}")
            }
            CouplingError::Remote { kind, message } => {
                write!(f, "remote replica failure ({kind}): {message}")
            }
            CouplingError::UnknownTask(id) => write!(f, "unknown task {id}"),
            CouplingError::TaskFailed { kind, message } => {
                write!(f, "update task failed ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for CouplingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CouplingError::Irs(e) => Some(e),
            CouplingError::Db(e) => Some(e),
            CouplingError::Sgml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<irs::IrsError> for CouplingError {
    fn from(e: irs::IrsError) -> Self {
        CouplingError::Irs(e)
    }
}

impl From<oodb::DbError> for CouplingError {
    fn from(e: oodb::DbError) -> Self {
        CouplingError::Db(e)
    }
}

impl From<sgml::SgmlError> for CouplingError {
    fn from(e: sgml::SgmlError) -> Self {
        CouplingError::Sgml(e)
    }
}

impl From<std::io::Error> for CouplingError {
    fn from(e: std::io::Error) -> Self {
        CouplingError::Irs(irs::IrsError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CouplingError = oodb::DbError::UnknownClass("X".into()).into();
        assert!(e.to_string().contains("OODBMS"));
        let e: CouplingError = irs::IrsError::UnknownDocument("k".into()).into();
        assert!(e.to_string().contains("IRS"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CouplingError::UnknownCollection("coll".into());
        assert!(e.to_string().contains("coll"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn kinds_classify_stably() {
        assert_eq!(
            CouplingError::UnknownCollection("c".into()).kind(),
            ErrorKind::NotFound
        );
        assert_eq!(
            CouplingError::from(irs::IrsError::Unavailable("down".into())).kind(),
            ErrorKind::IrsDown
        );
        assert_eq!(
            CouplingError::from(irs::IrsError::QueryParse {
                reason: "bad".into(),
                offset: 0
            })
            .kind(),
            ErrorKind::Parse
        );
        assert_eq!(
            CouplingError::from(oodb::DbError::UnknownObject(oodb::Oid(1))).kind(),
            ErrorKind::NotFound
        );
        assert_eq!(
            CouplingError::from(std::io::Error::other("disk")).kind(),
            ErrorKind::Io
        );
        assert_eq!(CouplingError::Overloaded(8).kind(), ErrorKind::Overloaded);
        assert_eq!(CouplingError::ShuttingDown.kind(), ErrorKind::Overloaded);
        assert_eq!(
            CouplingError::Timeout(Duration::from_millis(5)).kind(),
            ErrorKind::Timeout
        );
        assert_eq!(
            CouplingError::BadSpecQuery("strings".into()).kind(),
            ErrorKind::Parse
        );
        assert_eq!(
            CouplingError::DuplicateCollection("c".into()).kind(),
            ErrorKind::Other
        );
        assert_eq!(CouplingError::UnknownTask(3).kind(), ErrorKind::NotFound);
        assert_eq!(
            CouplingError::TaskFailed {
                kind: ErrorKind::IrsDown,
                message: "down".into()
            }
            .kind(),
            ErrorKind::IrsDown
        );
        assert!(CouplingError::UnknownTask(3).to_string().contains('3'));
        assert!(CouplingError::TaskFailed {
            kind: ErrorKind::Io,
            message: "disk".into()
        }
        .to_string()
        .contains("disk"));
    }

    #[test]
    fn overload_and_timeout_display() {
        assert!(CouplingError::Overloaded(64).to_string().contains("64"));
        assert!(CouplingError::Timeout(Duration::from_millis(3))
            .to_string()
            .contains("deadline"));
        assert!(CouplingError::ShuttingDown.to_string().contains("shut"));
        assert_eq!(ErrorKind::IrsDown.to_string(), "irs-down");
    }
}
