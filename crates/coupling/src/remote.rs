//! Remote IRS replicas: hedged reads, failover, and stale fallback.
//!
//! The paper's loose coupling (Figure 1, alternative 3) treats the IRS as
//! an external, independently failing component. [`crate::retry`] models
//! that failure *in process*; this module moves the IRS behind a real
//! process boundary: reads fan out across N **replicas** — identical
//! read-only copies of the IRS index — through a pluggable
//! [`ReplicaTransport`]. The engine is transport-agnostic: the `serve`
//! crate supplies a TCP transport over the framed wire protocol, and unit
//! tests here use in-process fakes.
//!
//! The read path composes four defences, applied in order:
//!
//! 1. **Hedged requests** — each read is first sent to the
//!    healthiest-looking replica; if no reply arrives within
//!    [`RemoteConfig::hedge_delay`], a *hedge* is launched to the next
//!    replica and whichever answers first wins. Hedging bounds tail
//!    latency: a stalled replica costs `hedge_delay`, not a full timeout.
//! 2. **Fast failover** — a replica that fails *quickly* (connection
//!    refused, reset) triggers an immediate launch to the next candidate
//!    without waiting for the hedge timer.
//! 3. **Per-replica circuit breakers and latency ranking** — replicas
//!    that keep failing trip a [`CircuitBreaker`] and are skipped when
//!    ranking candidates; replicas that merely stall (black holes) are
//!    charged a latency penalty when their attempt is abandoned, so
//!    they lose the primary slot and stop costing a hedge delay on
//!    every request. [`RemoteIrs::probe`] doubles as the breaker's
//!    half-open trial.
//! 4. **Stale fallback** — when every attempt fails, the last
//!    successfully fetched result for the same `(collection, query)` is
//!    served with [`ResultOrigin::Stale`], completing the paper's
//!    fallback ladder *fresh → buffered → stale*.
//!
//! Every launch is gated by the replica's breaker and accounted in
//! [`RemoteStats`]; tests assert on those counters to prove hedges fire
//! and breakers open when the fault plan says they must.
//!
//! # Determinism and time
//!
//! Backoff between retry rounds uses [`RetryPolicy::backoff_for`]'s
//! seeded jitter, so a fixed configuration yields a reproducible sleep
//! schedule. Wall-clock outcomes (which replica wins a hedge race) are
//! inherently racy; tests therefore assert on *invariants* (a hedge
//! fired; the result is correct; latency stayed under the bound), not on
//! which replica won.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use irs::QueryGlobals;
use oodb::Oid;

use crate::collection::ResultOrigin;
use crate::error::{CouplingError, ErrorKind, Result};
use crate::retry::{BreakerConfig, BreakerStats, CircuitBreaker, RetryPolicy};
use crate::stale::StaleStore;

/// A connection to one IRS replica.
///
/// Implementations must bound their own blocking time (connect/read
/// timeouts): the hedging engine abandons attempts that outlive the
/// request deadline, but an abandoned call still occupies its thread
/// until the transport itself gives up.
pub trait ReplicaTransport: Send + Sync + 'static {
    /// Ranked retrieval on the replica: top-k `(oid, score)` pairs in
    /// descending score order, plus the origin the *replica* reports
    /// (a replica may itself serve buffered results).
    fn search(&self, collection: &str, query: &str) -> Result<(Vec<(Oid, f64)>, ResultOrigin)>;

    /// The paper's `getIRSValue`: the relevance of one object for a
    /// query, `0.0` when the object does not match.
    fn value(&self, collection: &str, query: &str, oid: Oid) -> Result<f64>;

    /// Cheap liveness probe (wire round-trip, no IRS work).
    fn ping(&self) -> Result<()>;

    /// The replica's corpus statistics for `query` — one partition's leg
    /// of the scatter/gather global-statistics exchange
    /// ([`crate::partition::PartitionedIrs`]). The default errors
    /// permanently: transports predating partitioned serving simply do
    /// not participate, and the error must not trigger failover.
    fn term_stats(&self, collection: &str, query: &str) -> Result<QueryGlobals> {
        let _ = (collection, query);
        Err(CouplingError::Remote {
            kind: ErrorKind::Other,
            message: "transport does not support the term-stats exchange".into(),
        })
    }

    /// Ranked retrieval under *supplied* merged corpus statistics,
    /// returning raw `(IRS key, score)` pairs in the top-k engine's
    /// selection order so the router can merge bit-identically. Defaults
    /// to a permanent error like [`ReplicaTransport::term_stats`].
    fn search_global(
        &self,
        collection: &str,
        query: &str,
        k: usize,
        globals: &QueryGlobals,
    ) -> Result<Vec<(String, f64)>> {
        let _ = (collection, query, k, globals);
        Err(CouplingError::Remote {
            kind: ErrorKind::Other,
            message: "transport does not support globally-scored search".into(),
        })
    }
}

/// Tuning for the hedged fan-out. Defaults suit loopback tests; a real
/// deployment would scale the delays up with network RTT.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// How long to wait for the first reply before launching a hedge to
    /// the next-ranked replica.
    pub hedge_delay: Duration,
    /// Budget an individual attempt gets after launch. The total wait
    /// for one read is bounded by `hedge_delay + attempt_timeout`.
    pub attempt_timeout: Duration,
    /// Total launches (primary + hedge + failovers, across backoff
    /// rounds) before the engine gives up and falls back to stale.
    pub max_attempts: u32,
    /// Backoff schedule between failover rounds once every replica has
    /// been tried; jitter is seeded, hence deterministic.
    pub retry: RetryPolicy,
    /// Breaker configuration applied to each replica independently.
    pub breaker: BreakerConfig,
    /// Entries kept in the stale-result store (the least recently
    /// *refreshed* key evicts first; re-putting a key renews its slot).
    pub stale_capacity: usize,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            hedge_delay: Duration::from_millis(30),
            attempt_timeout: Duration::from_millis(500),
            max_attempts: 4,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            stale_capacity: 256,
        }
    }
}

/// Counter snapshot of the fan-out engine (see [`RemoteIrs::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteStats {
    /// Logical read requests (search + value) accepted by the engine.
    pub requests: u64,
    /// Hedge launches fired because the hedge delay expired.
    pub hedges_fired: u64,
    /// Requests won by a launch other than the primary (hedge or
    /// failover finished first).
    pub hedge_wins: u64,
    /// Launches fired because an earlier attempt failed fast.
    pub failovers: u64,
    /// Candidate launches skipped because the replica's breaker was open.
    pub breaker_skips: u64,
    /// Requests answered from the stale store after all attempts failed.
    pub stale_serves: u64,
    /// Requests that failed outright — all attempts failed and no stale
    /// entry existed.
    pub exhausted: u64,
}

/// Health snapshot of one replica (see [`RemoteIrs::health`]).
#[derive(Debug, Clone)]
pub struct ReplicaHealth {
    /// The label the replica was registered under.
    pub label: String,
    /// Exponentially weighted moving average of successful-attempt
    /// latency, in microseconds (`0` until the first success).
    pub ewma_us: u64,
    /// Attempts this replica answered first with a success.
    pub wins: u64,
    /// Failed or abandoned attempts charged to this replica.
    pub failures: u64,
    /// Its circuit breaker's counters and current state.
    pub breaker: BreakerStats,
}

struct Replica<T> {
    label: String,
    transport: T,
    breaker: CircuitBreaker,
    ewma_us: AtomicU64,
    wins: AtomicU64,
    failures: AtomicU64,
}

/// One EWMA step, `(old·7 + sample·3) / 10`, computed in `u128` so
/// `u64::MAX`-scale samples (a multi-hour stall measured in µs after a
/// clock step, or a hostile transport) cannot overflow. The result is a
/// weighted mean of two `u64`s, so it always fits back into `u64`.
fn ewma_blend(old: u64, sample: u64) -> u64 {
    if old == 0 {
        sample.max(1)
    } else {
        ((u128::from(old) * 7 + u128::from(sample) * 3) / 10) as u64
    }
}

impl<T> Replica<T> {
    /// Fold one latency sample into the ranking EWMA. Racy
    /// read-modify-write is fine: the EWMA is a ranking hint.
    fn charge_latency(&self, latency: Duration) {
        let sample = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let old = self.ewma_us.load(Ordering::Relaxed);
        self.ewma_us
            .store(ewma_blend(old, sample).max(1), Ordering::Relaxed);
    }

    fn record_success(&self, latency: Duration) {
        self.wins.fetch_add(1, Ordering::Relaxed);
        self.charge_latency(latency);
    }

    fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.breaker.on_failure();
    }

    /// The request finished while this replica's attempt was still in
    /// the air. Not a breaker failure (a merely-slow replica must not
    /// trip open), but the elapsed time is a truthful lower bound on
    /// its latency — feeding it to the EWMA demotes the replica from
    /// the primary slot so later requests stop paying the hedge delay.
    fn record_abandon(&self, elapsed: Duration) {
        self.charge_latency(elapsed);
    }
}

/// Why a launch happened — kept so the stats can distinguish a hedge win
/// from a plain failover.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LaunchKind {
    Primary,
    Hedge,
    Failover,
}

struct Outcome<R> {
    replica: usize,
    kind: LaunchKind,
    latency: Duration,
    result: Result<R>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    hedges_fired: AtomicU64,
    hedge_wins: AtomicU64,
    failovers: AtomicU64,
    breaker_skips: AtomicU64,
    stale_serves: AtomicU64,
    exhausted: AtomicU64,
}

/// Client-side fan-out over N IRS replicas with hedged reads, failover,
/// per-replica circuit breakers, and stale fallback (module docs have
/// the full policy).
pub struct RemoteIrs<T> {
    replicas: Vec<Arc<Replica<T>>>,
    config: RemoteConfig,
    counters: Counters,
    stale: StaleStore,
}

impl<T: ReplicaTransport> RemoteIrs<T> {
    /// Build a fan-out over `replicas` (label + transport each). The
    /// order given is the tiebreak order while no latency data exists.
    pub fn new(replicas: Vec<(String, T)>, config: RemoteConfig) -> Self {
        let stale = StaleStore::new(config.stale_capacity);
        RemoteIrs {
            replicas: replicas
                .into_iter()
                .map(|(label, transport)| {
                    Arc::new(Replica {
                        label,
                        transport,
                        breaker: CircuitBreaker::new(config.breaker.clone()),
                        ewma_us: AtomicU64::new(0),
                        wins: AtomicU64::new(0),
                        failures: AtomicU64::new(0),
                    })
                })
                .collect(),
            config,
            counters: Counters::default(),
            stale,
        }
    }

    /// Number of configured replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Entries currently held by the stale-result store.
    pub fn stale_len(&self) -> usize {
        self.stale.len()
    }

    /// Counter snapshot (monotonic since construction).
    pub fn stats(&self) -> RemoteStats {
        RemoteStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            hedges_fired: self.counters.hedges_fired.load(Ordering::Relaxed),
            hedge_wins: self.counters.hedge_wins.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            breaker_skips: self.counters.breaker_skips.load(Ordering::Relaxed),
            stale_serves: self.counters.stale_serves.load(Ordering::Relaxed),
            exhausted: self.counters.exhausted.load(Ordering::Relaxed),
        }
    }

    /// Per-replica health snapshots, in registration order.
    pub fn health(&self) -> Vec<ReplicaHealth> {
        self.replicas
            .iter()
            .map(|r| ReplicaHealth {
                label: r.label.clone(),
                ewma_us: r.ewma_us.load(Ordering::Relaxed),
                wins: r.wins.load(Ordering::Relaxed),
                failures: r.failures.load(Ordering::Relaxed),
                breaker: r.breaker.stats(),
            })
            .collect()
    }

    /// Ping every replica whose breaker admits a call, updating breaker
    /// state from the outcome. This *is* the breaker's half-open trial
    /// for remote replicas: a recovered replica's first successful probe
    /// closes its breaker, restoring it to the candidate ranking.
    /// Returns `(label, reachable)` per replica; a replica skipped by an
    /// open breaker reports `false`.
    pub fn probe(&self) -> Vec<(String, bool)> {
        self.replicas
            .iter()
            .map(|r| {
                let ok = match r.breaker.try_acquire() {
                    Err(_) => false,
                    Ok(()) => match r.transport.ping() {
                        Ok(()) => {
                            r.breaker.on_success();
                            true
                        }
                        Err(_) => {
                            r.record_failure();
                            false
                        }
                    },
                };
                (r.label.clone(), ok)
            })
            .collect()
    }

    /// Hedged ranked retrieval. On success the result refreshes the
    /// stale store; once every attempt has failed, a stored result for
    /// the same `(collection, query)` is served as
    /// [`ResultOrigin::Stale`].
    pub fn search_top_k(
        &self,
        collection: &str,
        query: &str,
    ) -> Result<(Vec<(Oid, f64)>, ResultOrigin)> {
        let (c, q) = (collection.to_string(), query.to_string());
        let outcome = self.hedged(move |t: &T| t.search(&c, &q));
        match outcome {
            Ok((hits, origin)) => {
                self.stale.put(collection, query, hits.clone());
                Ok((hits, origin))
            }
            Err(e) if e.is_transient() => match self.stale.get(collection, query) {
                Some(hits) => {
                    self.counters.stale_serves.fetch_add(1, Ordering::Relaxed);
                    Ok((hits, ResultOrigin::Stale))
                }
                None => {
                    self.counters.exhausted.fetch_add(1, Ordering::Relaxed);
                    Err(e)
                }
            },
            Err(e) => Err(e),
        }
    }

    /// Hedged `getIRSValue`. The stale fallback reuses the search store:
    /// a stored result for the same `(collection, query)` yields the
    /// object's stored score (or `0.0` when it did not match, mirroring
    /// the live semantics).
    pub fn get_irs_value(
        &self,
        collection: &str,
        query: &str,
        oid: Oid,
    ) -> Result<(f64, ResultOrigin)> {
        let (c, q) = (collection.to_string(), query.to_string());
        let outcome =
            self.hedged(move |t: &T| t.value(&c, &q, oid).map(|v| (v, ResultOrigin::Fresh)));
        match outcome {
            Ok(v) => Ok(v),
            Err(e) if e.is_transient() => match self.stale.get(collection, query) {
                Some(hits) => {
                    self.counters.stale_serves.fetch_add(1, Ordering::Relaxed);
                    let v = hits
                        .iter()
                        .find(|(o, _)| *o == oid)
                        .map(|(_, s)| *s)
                        .unwrap_or(0.0);
                    Ok((v, ResultOrigin::Stale))
                }
                None => {
                    self.counters.exhausted.fetch_add(1, Ordering::Relaxed);
                    Err(e)
                }
            },
            Err(e) => Err(e),
        }
    }

    /// Hedged term-statistics exchange: this replica group's (= this
    /// partition's) corpus statistics for `query`. No stale fallback —
    /// a router merging partition statistics must never mix a stale
    /// partition's counts into fresh ones, so degradation is handled at
    /// the merged-result level ([`crate::partition::PartitionedIrs`])
    /// instead.
    pub fn term_stats(&self, collection: &str, query: &str) -> Result<QueryGlobals> {
        let (c, q) = (collection.to_string(), query.to_string());
        self.hedged(move |t: &T| t.term_stats(&c, &q))
    }

    /// Hedged globally-scored ranked retrieval (the gather leg of
    /// scatter/gather): top-`k` raw `(IRS key, score)` pairs of this
    /// partition under the supplied merged statistics. Like
    /// [`RemoteIrs::term_stats`], no per-group stale fallback.
    pub fn search_global(
        &self,
        collection: &str,
        query: &str,
        k: usize,
        globals: &QueryGlobals,
    ) -> Result<Vec<(String, f64)>> {
        let (c, q, g) = (collection.to_string(), query.to_string(), globals.clone());
        self.hedged(move |t: &T| t.search_global(&c, &q, k, &g))
    }

    /// Candidate order for the next round: breaker-closed replicas
    /// first, then by EWMA latency ascending (unmeasured replicas sort
    /// first so newcomers get traffic), registration order as tiebreak.
    fn ranked(&self) -> VecDeque<usize> {
        let mut order: Vec<usize> = (0..self.replicas.len()).collect();
        order.sort_by_key(|&i| {
            let r = &self.replicas[i];
            let open = r.breaker.stats().open_now;
            (open, r.ewma_us.load(Ordering::Relaxed), i)
        });
        order.into()
    }

    /// The hedging engine. Launches attempts per the module-level
    /// policy; returns the first success, a permanent error as soon as
    /// one is seen, or the last transient error once attempts are
    /// exhausted.
    fn hedged<R, F>(&self, op: F) -> Result<R>
    where
        R: Send + 'static,
        F: Fn(&T) -> Result<R> + Send + Sync + 'static,
    {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        if self.replicas.is_empty() {
            return Err(CouplingError::Remote {
                kind: ErrorKind::IrsDown,
                message: "no replicas configured".into(),
            });
        }

        let started = Instant::now();
        let deadline = started + self.config.hedge_delay + self.config.attempt_timeout;
        let op: Arc<F> = Arc::new(op);
        let (tx, rx) = mpsc::channel::<Outcome<R>>();

        let mut queue = self.ranked();
        let mut launches: u32 = 0;
        let mut in_flight: usize = 0;
        // Replicas with an attempt still outstanding; charged a breaker
        // failure if we abandon them at the deadline, so a black-holed
        // replica trips open even though its socket never errors.
        let mut outstanding: Vec<usize> = Vec::new();
        let mut round: u32 = 0;
        let mut hedge_armed = true;
        let hedge_due = started + self.config.hedge_delay;
        let mut last_err: Option<CouplingError> = None;

        // Launch the next breaker-admitted candidate from `queue`.
        // Returns true if an attempt started.
        let launch = |queue: &mut VecDeque<usize>,
                      kind: LaunchKind,
                      launches: &mut u32,
                      in_flight: &mut usize,
                      outstanding: &mut Vec<usize>|
         -> bool {
            while let Some(i) = queue.pop_front() {
                if *launches >= self.config.max_attempts {
                    return false;
                }
                if self.replicas[i].breaker.try_acquire().is_err() {
                    self.counters.breaker_skips.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                *launches += 1;
                *in_flight += 1;
                outstanding.push(i);
                match kind {
                    LaunchKind::Hedge => {
                        self.counters.hedges_fired.fetch_add(1, Ordering::Relaxed);
                    }
                    LaunchKind::Failover => {
                        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    LaunchKind::Primary => {}
                }
                let replica = Arc::clone(&self.replicas[i]);
                let op = Arc::clone(&op);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let t0 = Instant::now();
                    let result = op(&replica.transport);
                    // The receiver may be gone (request already won or
                    // abandoned); a dead letter is fine.
                    let _ = tx.send(Outcome {
                        replica: i,
                        kind,
                        latency: t0.elapsed(),
                        result,
                    });
                });
                return true;
            }
            false
        };

        if !launch(
            &mut queue,
            LaunchKind::Primary,
            &mut launches,
            &mut in_flight,
            &mut outstanding,
        ) {
            // Every replica's breaker is open: fail fast, stale fallback
            // (in the caller) is the only remaining defence.
            return Err(CouplingError::Remote {
                kind: ErrorKind::IrsDown,
                message: "all replica circuit breakers open".into(),
            });
        }

        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let wait = if hedge_armed && hedge_due > now {
                hedge_due - now
            } else {
                deadline - now
            };
            if hedge_armed && hedge_due <= now {
                hedge_armed = false;
                launch(
                    &mut queue,
                    LaunchKind::Hedge,
                    &mut launches,
                    &mut in_flight,
                    &mut outstanding,
                );
                continue;
            }
            match rx.recv_timeout(wait) {
                Ok(outcome) => {
                    in_flight -= 1;
                    outstanding.retain(|&r| r != outcome.replica);
                    let rep = &self.replicas[outcome.replica];
                    match outcome.result {
                        Ok(v) => {
                            rep.breaker.on_success();
                            rep.record_success(outcome.latency);
                            if outcome.kind != LaunchKind::Primary {
                                self.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
                            }
                            let elapsed = started.elapsed();
                            for &slow in &outstanding {
                                self.replicas[slow].record_abandon(elapsed);
                            }
                            return Ok(v);
                        }
                        Err(e) if e.is_transient() => {
                            rep.record_failure();
                            last_err = Some(e);
                            // Fast failover: don't wait for the hedge
                            // timer, move on immediately.
                            let started_one = launch(
                                &mut queue,
                                LaunchKind::Failover,
                                &mut launches,
                                &mut in_flight,
                                &mut outstanding,
                            );
                            if !started_one && in_flight == 0 {
                                // Round exhausted with nothing in the
                                // air: back off, re-rank, go again —
                                // breakers opened this round now sort
                                // (and are skipped) accordingly.
                                if launches >= self.config.max_attempts {
                                    break;
                                }
                                round += 1;
                                let backoff = self.config.retry.backoff_for(round);
                                if Instant::now() + backoff >= deadline {
                                    break;
                                }
                                std::thread::sleep(backoff);
                                queue = self.ranked();
                                if !launch(
                                    &mut queue,
                                    LaunchKind::Failover,
                                    &mut launches,
                                    &mut in_flight,
                                    &mut outstanding,
                                ) {
                                    break;
                                }
                            }
                        }
                        Err(e) => {
                            // Permanent (parse error, unknown name,
                            // read-only write): the request itself is at
                            // fault; no failover, no breaker penalty.
                            return Err(e);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Either the hedge timer or the deadline; the top of
                    // the loop disambiguates.
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        // Deadline (or attempts) exhausted. Attempts still in the air are
        // abandoned; charge their replicas so stalled-but-open sockets
        // (black holes) trip breakers and stop being ranked.
        for &i in &outstanding {
            self.replicas[i].record_failure();
        }
        Err(last_err.unwrap_or_else(|| CouplingError::Remote {
            kind: ErrorKind::Timeout,
            message: format!(
                "no replica answered within {:?}",
                self.config.hedge_delay + self.config.attempt_timeout
            ),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicBool;

    /// Scripted fake replica: a fixed result set, optional artificial
    /// latency, and runtime-switchable failure modes.
    struct FakeReplica {
        hits: Vec<(Oid, f64)>,
        delay: Mutex<Duration>,
        down: AtomicBool,
        hang: AtomicBool,
        calls: AtomicU64,
    }

    impl FakeReplica {
        fn healthy(hits: Vec<(Oid, f64)>) -> Arc<Self> {
            Arc::new(FakeReplica {
                hits,
                delay: Mutex::new(Duration::ZERO),
                down: AtomicBool::new(false),
                hang: AtomicBool::new(false),
                calls: AtomicU64::new(0),
            })
        }

        fn answer<R>(&self, ok: impl FnOnce(&Self) -> R) -> Result<R> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if self.hang.load(Ordering::Relaxed) {
                // A black-holed connection: the transport's own timeout
                // (simulated here) eventually fires.
                std::thread::sleep(Duration::from_millis(400));
                return Err(CouplingError::Remote {
                    kind: ErrorKind::Timeout,
                    message: "fake transport timeout".into(),
                });
            }
            if self.down.load(Ordering::Relaxed) {
                return Err(CouplingError::Remote {
                    kind: ErrorKind::Io,
                    message: "fake connection refused".into(),
                });
            }
            let delay = *self.delay.lock();
            if delay > Duration::ZERO {
                std::thread::sleep(delay);
            }
            Ok(ok(self))
        }
    }

    impl ReplicaTransport for Arc<FakeReplica> {
        fn search(&self, _c: &str, _q: &str) -> Result<(Vec<(Oid, f64)>, ResultOrigin)> {
            self.answer(|s| (s.hits.clone(), ResultOrigin::Fresh))
        }

        fn value(&self, _c: &str, _q: &str, oid: Oid) -> Result<f64> {
            self.answer(|s| {
                s.hits
                    .iter()
                    .find(|(o, _)| *o == oid)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0)
            })
        }

        fn ping(&self) -> Result<()> {
            self.answer(|_| ())
        }
    }

    fn hits() -> Vec<(Oid, f64)> {
        vec![(Oid(7), 0.9), (Oid(3), 0.5)]
    }

    fn engine(reps: Vec<Arc<FakeReplica>>, config: RemoteConfig) -> RemoteIrs<Arc<FakeReplica>> {
        let replicas = reps
            .into_iter()
            .enumerate()
            .map(|(i, r)| (format!("r{i}"), r))
            .collect();
        RemoteIrs::new(replicas, config)
    }

    fn fast_config() -> RemoteConfig {
        RemoteConfig {
            hedge_delay: Duration::from_millis(40),
            attempt_timeout: Duration::from_millis(300),
            ..RemoteConfig::default()
        }
    }

    #[test]
    fn healthy_primary_answers_without_hedging() {
        let remote = engine(
            vec![FakeReplica::healthy(hits()), FakeReplica::healthy(hits())],
            fast_config(),
        );
        let (got, origin) = remote.search_top_k("coll", "telnet").unwrap();
        assert_eq!(got, hits());
        assert_eq!(origin, ResultOrigin::Fresh);
        let s = remote.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.hedges_fired, 0);
        assert_eq!(s.failovers, 0);
    }

    #[test]
    fn slow_primary_gets_hedged_and_the_hedge_wins() {
        let slow = FakeReplica::healthy(hits());
        // Far slower than hedge_delay but within attempt_timeout, so the
        // hedge provably finishes first.
        *slow.delay.lock() = Duration::from_millis(200);
        let fast = FakeReplica::healthy(hits());
        let remote = engine(vec![Arc::clone(&slow), fast], fast_config());
        let started = Instant::now();
        let (got, origin) = remote.search_top_k("coll", "telnet").unwrap();
        assert_eq!(got, hits());
        assert_eq!(origin, ResultOrigin::Fresh);
        assert!(
            started.elapsed() < Duration::from_millis(180),
            "hedge should win long before the slow primary finishes"
        );
        let s = remote.stats();
        assert_eq!(s.hedges_fired, 1);
        assert_eq!(s.hedge_wins, 1);
    }

    #[test]
    fn fast_failure_fails_over_before_the_hedge_timer() {
        let dead = FakeReplica::healthy(hits());
        dead.down.store(true, Ordering::Relaxed);
        let alive = FakeReplica::healthy(hits());
        let mut config = fast_config();
        // A hedge timer far beyond the attempt timeout: only immediate
        // failover can explain a fast success.
        config.hedge_delay = Duration::from_millis(250);
        let remote = engine(vec![dead, alive], config);
        let started = Instant::now();
        let (got, _) = remote.search_top_k("coll", "telnet").unwrap();
        assert_eq!(got, hits());
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "failover must not wait for the hedge timer"
        );
        let s = remote.stats();
        assert_eq!(s.failovers, 1);
        assert_eq!(s.hedges_fired, 0);
        assert_eq!(s.hedge_wins, 1, "the failover launch won");
    }

    #[test]
    fn repeated_failures_trip_the_breaker_and_skip_the_replica() {
        let dead = FakeReplica::healthy(hits());
        dead.down.store(true, Ordering::Relaxed);
        let alive = FakeReplica::healthy(hits());
        let mut config = fast_config();
        config.breaker = BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(60),
        };
        let remote = engine(vec![Arc::clone(&dead), Arc::clone(&alive)], config);
        for _ in 0..4 {
            remote.search_top_k("coll", "telnet").unwrap();
        }
        let health = remote.health();
        assert!(
            health[0].breaker.open_now,
            "dead replica's breaker must open"
        );
        let before = dead.calls.load(Ordering::Relaxed);
        remote.search_top_k("coll", "telnet").unwrap();
        assert_eq!(
            dead.calls.load(Ordering::Relaxed),
            before,
            "open breaker keeps traffic off the dead replica"
        );
        // Slow the healthy replica past the hedge delay: the hedge
        // considers the dead replica, finds its breaker open, and skips
        // it rather than sending traffic.
        *alive.delay.lock() = Duration::from_millis(80);
        remote.search_top_k("coll", "telnet").unwrap();
        assert!(remote.stats().breaker_skips > 0);
        assert_eq!(
            dead.calls.load(Ordering::Relaxed),
            before,
            "hedge skips the open breaker instead of probing it"
        );
    }

    #[test]
    fn all_replicas_down_serves_stale_after_a_warm_query() {
        let a = FakeReplica::healthy(hits());
        let b = FakeReplica::healthy(hits());
        let remote = engine(vec![Arc::clone(&a), Arc::clone(&b)], fast_config());
        // Warm the stale store.
        remote.search_top_k("coll", "telnet").unwrap();
        a.down.store(true, Ordering::Relaxed);
        b.down.store(true, Ordering::Relaxed);
        let (got, origin) = remote.search_top_k("coll", "telnet").unwrap();
        assert_eq!(got, hits());
        assert_eq!(origin, ResultOrigin::Stale);
        assert_eq!(remote.stats().stale_serves, 1);
        // getIRSValue degrades through the same store.
        let (v, origin) = remote.get_irs_value("coll", "telnet", Oid(7)).unwrap();
        assert!((v - 0.9).abs() < 1e-9);
        assert_eq!(origin, ResultOrigin::Stale);
        let (v, _) = remote.get_irs_value("coll", "telnet", Oid(999)).unwrap();
        assert_eq!(v, 0.0, "non-matching object scores zero even stale");
    }

    #[test]
    fn all_down_with_cold_store_reports_transient_error() {
        let a = FakeReplica::healthy(hits());
        a.down.store(true, Ordering::Relaxed);
        let b = FakeReplica::healthy(hits());
        b.down.store(true, Ordering::Relaxed);
        let remote = engine(vec![a, b], fast_config());
        let err = remote.search_top_k("coll", "never-seen").unwrap_err();
        assert!(
            err.is_transient(),
            "infrastructure failure, not a bad query"
        );
        assert_eq!(remote.stats().exhausted, 1);
    }

    #[test]
    fn permanent_errors_return_immediately_without_failover() {
        struct BadQuery;
        impl ReplicaTransport for BadQuery {
            fn search(&self, _c: &str, _q: &str) -> Result<(Vec<(Oid, f64)>, ResultOrigin)> {
                Err(CouplingError::Remote {
                    kind: ErrorKind::Parse,
                    message: "unbalanced parenthesis".into(),
                })
            }
            fn value(&self, _c: &str, _q: &str, _o: Oid) -> Result<f64> {
                unreachable!()
            }
            fn ping(&self) -> Result<()> {
                Ok(())
            }
        }
        let remote = RemoteIrs::new(
            vec![("a".into(), BadQuery), ("b".into(), BadQuery)],
            fast_config(),
        );
        let err = remote.search_top_k("coll", "((").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Parse);
        assert_eq!(remote.stats().failovers, 0, "bad queries don't fail over");
    }

    #[test]
    fn black_holed_replica_is_abandoned_within_the_deadline() {
        let hung = FakeReplica::healthy(hits());
        hung.hang.store(true, Ordering::Relaxed);
        let alive = FakeReplica::healthy(hits());
        let mut config = fast_config();
        config.hedge_delay = Duration::from_millis(30);
        let remote = engine(vec![Arc::clone(&hung), alive], config.clone());
        let started = Instant::now();
        let (got, _) = remote.search_top_k("coll", "telnet").unwrap();
        assert_eq!(got, hits());
        // The hedge answers; total latency ≈ hedge_delay, far below the
        // hung replica's 400ms stall.
        assert!(started.elapsed() < config.hedge_delay + Duration::from_millis(150));
        assert_eq!(remote.stats().hedges_fired, 1);
        // The abandoned attempt fed the hung replica's EWMA, demoting it
        // from the primary slot: the next request goes straight to the
        // healthy replica and needs no hedge at all.
        let started = Instant::now();
        remote.search_top_k("coll", "telnet").unwrap();
        assert!(started.elapsed() < Duration::from_millis(25));
        assert_eq!(remote.stats().hedges_fired, 1, "no second hedge");
    }

    #[test]
    fn probe_reports_reachability_and_closes_recovered_breakers() {
        let flaky = FakeReplica::healthy(hits());
        flaky.down.store(true, Ordering::Relaxed);
        let steady = FakeReplica::healthy(hits());
        let mut config = fast_config();
        config.breaker = BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(5),
        };
        let remote = engine(vec![Arc::clone(&flaky), steady], config);
        let probes = remote.probe();
        assert_eq!(probes[0], ("r0".into(), false));
        assert_eq!(probes[1], ("r1".into(), true));
        assert!(remote.health()[0].breaker.open_now);
        // Replica recovers; after the cooldown the probe is the
        // half-open trial and closes the breaker.
        flaky.down.store(false, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
        let probes = remote.probe();
        assert_eq!(probes[0], ("r0".into(), true));
        assert!(!remote.health()[0].breaker.open_now);
    }

    #[test]
    fn stale_store_is_bounded() {
        let a = FakeReplica::healthy(hits());
        let mut config = fast_config();
        config.stale_capacity = 3;
        let remote = engine(vec![a], config);
        for i in 0..10 {
            remote.search_top_k("coll", &format!("q{i}")).unwrap();
        }
        assert_eq!(remote.stale_len(), 3);
    }

    #[test]
    fn ewma_blend_survives_u64_scale_samples() {
        // Regression: the blend used to run `(old * 7 + sample * 3) / 10`
        // in u64, overflowing (panic in debug, wraparound in release) for
        // samples above ~u64::MAX/3 and corrupting replica ranking.
        assert_eq!(ewma_blend(0, 42), 42, "first sample seeds the EWMA");
        assert_eq!(ewma_blend(0, 0), 1, "EWMA stays nonzero once seeded");
        assert_eq!(ewma_blend(10, 20), 13);
        assert_eq!(ewma_blend(u64::MAX, u64::MAX), u64::MAX);
        let demoted = ewma_blend(1, u64::MAX);
        assert!(
            demoted > u64::MAX / 4,
            "a huge sample must demote, not wrap to a tiny EWMA ({demoted})"
        );
        assert!(
            ewma_blend(u64::MAX, 1) < u64::MAX,
            "recovery pulls it back down"
        );
    }

    #[test]
    fn huge_latency_samples_do_not_panic_or_reset_the_ranking() {
        let rep = Replica {
            label: "r".into(),
            transport: FakeReplica::healthy(hits()),
            breaker: CircuitBreaker::new(BreakerConfig::default()),
            ewma_us: AtomicU64::new(0),
            wins: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        };
        rep.record_success(Duration::from_micros(120));
        // A clock-step-scale stall: `Duration::MAX` clamps to u64::MAX µs.
        rep.record_success(Duration::MAX);
        rep.record_abandon(Duration::MAX);
        let ewma = rep.ewma_us.load(Ordering::Relaxed);
        assert!(
            ewma > u64::MAX / 2,
            "stalled replica must rank last, got EWMA {ewma}"
        );
        assert_eq!(rep.wins.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn no_replicas_is_an_irs_down_error() {
        let remote: RemoteIrs<Arc<FakeReplica>> = RemoteIrs::new(vec![], fast_config());
        let err = remote.search_top_k("coll", "q").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::IrsDown);
    }
}
