//! Update propagation from the OODBMS to the IRS (paper Section 4.6).
//!
//! "The point of propagation time can freely be chosen within the
//! following bounds: (1) After each database update the corresponding
//! IRS-index structures are updated. (2) After a query is issued the
//! index structures are updated before the query's evaluation."
//!
//! [`PropagationStrategy::Eager`] is bound (1); [`PropagationStrategy::Deferred`]
//! batches updates in an operation log and flushes on demand; queries
//! force a flush ("If, however, an information-need query is issued with
//! update propagation pending, propagation is enforced"). The log
//! performs the paper's cancellation optimisation: "with some operation
//! sequences, operations cancel out each other's effect. For instance,
//! consider the deletion of a text object that has just been generated."

//! With a [`Journal`] attached ([`Propagator::with_journal`]), the log is
//! additionally **durable**: operations are fsynced to an append-only,
//! checksummed file before they enter the in-memory log, replayed on
//! reopen, and compacted with the same cancellation optimisation. Under
//! the eager strategy the journal doubles as a parking lot: an update the
//! IRS transiently rejects is kept pending (journaled + folded) instead
//! of being lost, and applies at the next flush.

use std::path::Path;

use oodb::{MethodCtx, Oid};

use crate::collection::Collection;
use crate::error::Result;
use crate::journal::{Journal, SyncPolicy};

/// When updates reach the IRS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationStrategy {
    /// Apply each update to the IRS immediately.
    Eager,
    /// Record updates; apply on explicit [`Propagator::flush`] or forced
    /// by [`Propagator::before_query`].
    Deferred,
}

/// A pending update operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingOp {
    /// The object was inserted (and selected by the collection's
    /// specification).
    Insert(Oid),
    /// The object's text changed.
    Modify(Oid),
    /// The object was deleted.
    Delete(Oid),
}

impl PendingOp {
    /// The object the operation concerns.
    pub fn oid(&self) -> Oid {
        match self {
            PendingOp::Insert(o) | PendingOp::Modify(o) | PendingOp::Delete(o) => *o,
        }
    }
}

/// Propagation statistics (experiment E7's metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropagationStats {
    /// Operations recorded by the application.
    pub recorded: u64,
    /// Operations actually applied to the IRS.
    pub applied: u64,
    /// Operations eliminated by cancellation before reaching the IRS.
    pub cancelled: u64,
    /// Flushes forced by queries.
    pub forced_flushes: u64,
    /// Operations recovered from the journal at open.
    pub replayed: u64,
    /// Eager operations parked as pending after a transient IRS failure.
    pub parked: u64,
}

/// The update propagator for one collection.
#[derive(Debug)]
pub struct Propagator {
    strategy: PropagationStrategy,
    /// Net pending state per object, in arrival order of first touch.
    log: Vec<PendingOp>,
    stats: PropagationStats,
    /// Optional durable backing of the log.
    journal: Option<Journal>,
}

impl Propagator {
    /// Create a propagator with the given strategy.
    pub fn new(strategy: PropagationStrategy) -> Self {
        Propagator {
            strategy,
            log: Vec::new(),
            stats: PropagationStats::default(),
            journal: None,
        }
    }

    /// Create a propagator whose operation log is durably journaled at
    /// `path`. Surviving journal frames from a previous run (or crash)
    /// are replayed into the pending log — flush them into the collection
    /// to bring the IRS back in sync.
    pub fn with_journal(strategy: PropagationStrategy, path: &Path) -> Result<Self> {
        let (journal, replayed) = Journal::open(path)?;
        let mut prop = Propagator::new(strategy);
        for &op in &replayed {
            prop.fold(op);
        }
        // Replay folding is recovery, not application work: report only
        // the replay count.
        prop.stats = PropagationStats {
            replayed: replayed.len() as u64,
            ..PropagationStats::default()
        };
        prop.journal = Some(journal);
        Ok(prop)
    }

    /// [`Propagator::with_journal`] with an explicit journal
    /// [`SyncPolicy`] — pass [`SyncPolicy::GroupCommit`] to amortise the
    /// per-operation `sync_data` under deferred churn.
    pub fn with_journal_policy(
        strategy: PropagationStrategy,
        path: &Path,
        policy: SyncPolicy,
    ) -> Result<Self> {
        let mut prop = Self::with_journal(strategy, path)?;
        if let Some(j) = &mut prop.journal {
            j.set_sync_policy(policy);
        }
        Ok(prop)
    }

    /// The journal backing this propagator, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PropagationStrategy {
        self.strategy
    }

    /// Statistics so far.
    pub fn stats(&self) -> PropagationStats {
        self.stats
    }

    /// Pending (not yet applied) operations.
    pub fn pending(&self) -> &[PendingOp] {
        &self.log
    }

    /// Record an update. Under [`PropagationStrategy::Eager`] it is
    /// applied to `coll` immediately; under deferred it enters the log
    /// with cancellation folding. With a journal attached the operation
    /// is made durable *before* anything else happens, and an eager
    /// operation the IRS transiently rejects is parked as pending
    /// (`stats.parked`) instead of being lost.
    pub fn record(
        &mut self,
        ctx: &MethodCtx<'_>,
        coll: &mut Collection,
        op: PendingOp,
    ) -> Result<()> {
        self.stats.recorded += 1;
        match self.strategy {
            PropagationStrategy::Eager => {
                if self.journal.is_none() {
                    return self.apply_one(ctx, coll, op);
                }
                self.journal_append(op)?;
                if !self.log.is_empty() {
                    // Earlier operations are already parked; apply in
                    // order at the next flush rather than overtaking them.
                    self.fold(op);
                    self.stats.parked += 1;
                    return Ok(());
                }
                match self.apply_one(ctx, coll, op) {
                    Ok(()) => self.journal_clear(),
                    Err(e) if e.is_transient() => {
                        self.fold(op);
                        self.stats.parked += 1;
                        Ok(())
                    }
                    Err(e) => {
                        // Permanent failure: the op can never apply; drop
                        // it from the journal and surface the error.
                        self.journal_rewrite()?;
                        Err(e)
                    }
                }
            }
            PropagationStrategy::Deferred => {
                self.journal_append(op)?;
                self.fold(op);
                self.maybe_compact()
            }
        }
    }

    /// Record several updates at once. Under deferred propagation the
    /// whole batch is journaled with a **single** `sync_data`
    /// ([`Journal::append_batch`]) before any folding — the group-commit
    /// path for bulk loads, where per-operation fsync would dominate.
    /// Under eager propagation the batch degenerates to sequential
    /// [`Propagator::record`] calls (each operation must reach the IRS
    /// anyway).
    pub fn record_batch(
        &mut self,
        ctx: &MethodCtx<'_>,
        coll: &mut Collection,
        ops: &[PendingOp],
    ) -> Result<()> {
        match self.strategy {
            PropagationStrategy::Eager => {
                for &op in ops {
                    self.record(ctx, coll, op)?;
                }
                Ok(())
            }
            PropagationStrategy::Deferred => {
                self.stats.recorded += ops.len() as u64;
                if let Some(j) = &mut self.journal {
                    j.append_batch(ops)?;
                }
                for &op in ops {
                    self.fold(op);
                }
                self.maybe_compact()
            }
        }
    }

    fn journal_append(&mut self, op: PendingOp) -> Result<()> {
        match &mut self.journal {
            Some(j) => j.append(op),
            None => Ok(()),
        }
    }

    fn journal_clear(&mut self) -> Result<()> {
        match &mut self.journal {
            Some(j) => j.clear(),
            None => Ok(()),
        }
    }

    /// Rewrite the journal to exactly the current pending log.
    fn journal_rewrite(&mut self) -> Result<()> {
        match &mut self.journal {
            Some(j) => j.rewrite(&self.log),
            None => Ok(()),
        }
    }

    /// Apply the cancellation optimisation to the journal file itself:
    /// once it holds at least [`Journal::COMPACT_MIN`] frames and at
    /// least twice the folded log, rewrite it to the folded operations.
    fn maybe_compact(&mut self) -> Result<()> {
        let compact = self.journal.as_ref().is_some_and(|j| {
            j.frames() >= Journal::COMPACT_MIN && j.frames() >= 2 * self.log.len() as u64
        });
        if compact {
            self.journal_rewrite()?;
        }
        Ok(())
    }

    /// Fold `op` into the log, cancelling inverse pairs:
    ///
    /// * `Insert` then `Delete` of the same object → both vanish;
    /// * `Insert` then `Modify` → stays a single `Insert` (the insert
    ///   will pick up the newest text anyway);
    /// * `Modify` then `Modify` → one `Modify`;
    /// * `Modify` then `Delete` → one `Delete`.
    fn fold(&mut self, op: PendingOp) {
        let oid = op.oid();
        let existing = self.log.iter().position(|p| p.oid() == oid);
        match (existing.map(|i| self.log[i]), op) {
            (None, _) => self.log.push(op),
            (Some(PendingOp::Insert(_)), PendingOp::Delete(_)) => {
                let i = existing.expect("position found");
                self.log.remove(i);
                // Both the pending insert and this delete are no-ops.
                self.stats.cancelled += 2;
            }
            (Some(PendingOp::Insert(_)), PendingOp::Modify(_)) => {
                // Keep the Insert; the modify is absorbed.
                self.stats.cancelled += 1;
            }
            (Some(PendingOp::Modify(_)), PendingOp::Modify(_)) => {
                self.stats.cancelled += 1;
            }
            (Some(PendingOp::Modify(_)), PendingOp::Delete(_)) => {
                let i = existing.expect("position found");
                self.log[i] = op;
                self.stats.cancelled += 1;
            }
            (Some(prev), next) => {
                // Remaining combinations (Delete then anything, Insert
                // then Insert) indicate application misuse; keep both
                // and let the collection surface the error at flush.
                debug_assert!(
                    !matches!((prev, next), (PendingOp::Delete(_), PendingOp::Insert(_))),
                    "OIDs are never reused; delete-then-insert cannot occur"
                );
                self.log.push(next);
            }
        }
    }

    fn apply_one(
        &mut self,
        ctx: &MethodCtx<'_>,
        coll: &mut Collection,
        op: PendingOp,
    ) -> Result<()> {
        let result = match op {
            PendingOp::Insert(oid) => coll.on_insert(ctx, oid),
            PendingOp::Modify(oid) => coll.on_modify(ctx, oid),
            PendingOp::Delete(oid) => coll.on_delete(oid),
        };
        if result.is_ok() {
            self.stats.applied += 1;
        }
        result
    }

    /// Apply every pending operation ("a good strategy might be to detect
    /// low load periods"). Returns the number applied.
    ///
    /// On a mid-flush error the *unapplied* operations stay pending (and
    /// journaled), so a transient IRS failure loses nothing: the next
    /// flush picks up exactly where this one stopped.
    pub fn flush(&mut self, ctx: &MethodCtx<'_>, coll: &mut Collection) -> Result<usize> {
        let mut done = 0usize;
        while done < self.log.len() {
            let op = self.log[done];
            match self.apply_one(ctx, coll, op) {
                Ok(()) => done += 1,
                Err(e) => {
                    self.log.drain(..done);
                    self.journal_rewrite()?;
                    return Err(e);
                }
            }
        }
        self.log.clear();
        self.journal_clear()?;
        Ok(done)
    }

    /// Called before every information-need query: forces pending
    /// propagation so queries never see a stale index.
    pub fn before_query(&mut self, ctx: &MethodCtx<'_>, coll: &mut Collection) -> Result<()> {
        if !self.log.is_empty() {
            self.stats.forced_flushes += 1;
            self.flush(ctx, coll)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionSetup;
    use oodb::{Database, Value};
    use sgml::{load_document, parse_document};

    fn setup() -> (Database, Collection, Vec<Oid>) {
        let mut db = Database::in_memory();
        db.define_class("IRSObject", None).unwrap();
        let tree = parse_document(
            "<MMFDOC><PARA>telnet paragraph</PARA><PARA>www paragraph</PARA></MMFDOC>",
        )
        .unwrap();
        let mut txn = db.begin();
        let loaded = load_document(&mut db, &mut txn, &tree, "IRSObject").unwrap();
        db.commit(txn).unwrap();
        let mut coll = Collection::new("c", CollectionSetup::default());
        coll.index_objects(&db, "ACCESS p FROM p IN PARA").unwrap();
        let paras: Vec<Oid> = loaded.elements[1..].iter().map(|(_, o)| *o).collect();
        (db, coll, paras)
    }

    /// Create a new PARA object (not yet in the collection).
    fn new_para(db: &mut Database, text: &str) -> Oid {
        let class = db.schema().class_id("PARA").unwrap();
        let mut txn = db.begin();
        let oid = db.create_object(&mut txn, class).unwrap();
        db.set_attr(&mut txn, oid, "text", Value::from(text))
            .unwrap();
        db.commit(txn).unwrap();
        oid
    }

    #[test]
    fn eager_applies_immediately() {
        let (mut db, mut coll, _) = setup();
        let fresh = new_para(&mut db, "gopher text");
        let mut prop = Propagator::new(PropagationStrategy::Eager);
        let ctx = db.method_ctx();
        prop.record(&ctx, &mut coll, PendingOp::Insert(fresh))
            .unwrap();
        assert_eq!(coll.get_irs_result("gopher").unwrap().len(), 1);
        assert_eq!(prop.stats().applied, 1);
        assert!(prop.pending().is_empty());
    }

    #[test]
    fn deferred_applies_only_on_flush() {
        let (mut db, mut coll, _) = setup();
        let fresh = new_para(&mut db, "gopher text");
        let mut prop = Propagator::new(PropagationStrategy::Deferred);
        let ctx = db.method_ctx();
        prop.record(&ctx, &mut coll, PendingOp::Insert(fresh))
            .unwrap();
        assert!(
            coll.get_irs_result("gopher").unwrap().is_empty(),
            "not yet visible"
        );
        assert_eq!(prop.pending().len(), 1);
        let applied = prop.flush(&ctx, &mut coll).unwrap();
        assert_eq!(applied, 1);
        assert_eq!(coll.get_irs_result("gopher").unwrap().len(), 1);
    }

    #[test]
    fn insert_then_delete_cancels() {
        let (mut db, mut coll, _) = setup();
        let fresh = new_para(&mut db, "ephemeral");
        let mut prop = Propagator::new(PropagationStrategy::Deferred);
        let ctx = db.method_ctx();
        prop.record(&ctx, &mut coll, PendingOp::Insert(fresh))
            .unwrap();
        prop.record(&ctx, &mut coll, PendingOp::Delete(fresh))
            .unwrap();
        assert!(prop.pending().is_empty(), "pair cancelled");
        assert_eq!(prop.stats().cancelled, 2);
        let applied = prop.flush(&ctx, &mut coll).unwrap();
        assert_eq!(applied, 0, "nothing reaches the IRS");
    }

    #[test]
    fn modify_sequences_fold() {
        let (db, mut coll, paras) = setup();
        let mut prop = Propagator::new(PropagationStrategy::Deferred);
        let ctx = db.method_ctx();
        prop.record(&ctx, &mut coll, PendingOp::Modify(paras[0]))
            .unwrap();
        prop.record(&ctx, &mut coll, PendingOp::Modify(paras[0]))
            .unwrap();
        prop.record(&ctx, &mut coll, PendingOp::Modify(paras[0]))
            .unwrap();
        assert_eq!(prop.pending().len(), 1);
        assert_eq!(prop.stats().cancelled, 2);
        // Modify then delete becomes a single delete.
        prop.record(&ctx, &mut coll, PendingOp::Delete(paras[0]))
            .unwrap();
        assert_eq!(prop.pending(), &[PendingOp::Delete(paras[0])]);
    }

    #[test]
    fn insert_then_modify_absorbed() {
        let (mut db, mut coll, _) = setup();
        let fresh = new_para(&mut db, "first text");
        let mut prop = Propagator::new(PropagationStrategy::Deferred);
        let ctx = db.method_ctx();
        prop.record(&ctx, &mut coll, PendingOp::Insert(fresh))
            .unwrap();
        prop.record(&ctx, &mut coll, PendingOp::Modify(fresh))
            .unwrap();
        assert_eq!(prop.pending(), &[PendingOp::Insert(fresh)]);
        assert_eq!(prop.stats().cancelled, 1);
    }

    #[test]
    fn queries_force_pending_propagation() {
        let (mut db, mut coll, _) = setup();
        let fresh = new_para(&mut db, "gopher text");
        let mut prop = Propagator::new(PropagationStrategy::Deferred);
        let ctx = db.method_ctx();
        prop.record(&ctx, &mut coll, PendingOp::Insert(fresh))
            .unwrap();
        // The application calls before_query prior to evaluating.
        prop.before_query(&ctx, &mut coll).unwrap();
        assert_eq!(coll.get_irs_result("gopher").unwrap().len(), 1);
        assert_eq!(prop.stats().forced_flushes, 1);
        // No pending work → no forced flush.
        prop.before_query(&ctx, &mut coll).unwrap();
        assert_eq!(prop.stats().forced_flushes, 1);
    }

    fn journal_tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coupling-propagate-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn record_batch_folds_like_sequential_records() {
        let (mut db, mut coll, paras) = setup();
        let fresh = new_para(&mut db, "ephemeral");
        let ops = vec![
            PendingOp::Modify(paras[0]),
            PendingOp::Modify(paras[0]),
            PendingOp::Insert(fresh),
            PendingOp::Delete(fresh),
        ];
        let ctx = db.method_ctx();
        let mut batched = Propagator::new(PropagationStrategy::Deferred);
        batched.record_batch(&ctx, &mut coll, &ops).unwrap();
        let mut sequential = Propagator::new(PropagationStrategy::Deferred);
        for &op in &ops {
            sequential.record(&ctx, &mut coll, op).unwrap();
        }
        assert_eq!(batched.pending(), sequential.pending());
        assert_eq!(batched.pending(), &[PendingOp::Modify(paras[0])]);
        assert_eq!(batched.stats().recorded, 4);
        assert_eq!(batched.stats().cancelled, sequential.stats().cancelled);
    }

    #[test]
    fn record_batch_journals_with_one_sync() {
        let (db, mut coll, paras) = setup();
        let jpath = journal_tmp("batch_prop.journal");
        let mut prop = Propagator::with_journal(PropagationStrategy::Deferred, &jpath).unwrap();
        let ctx = db.method_ctx();
        let ops: Vec<PendingOp> = paras.iter().map(|&o| PendingOp::Modify(o)).collect();
        prop.record_batch(&ctx, &mut coll, &ops).unwrap();
        let j = prop.journal().unwrap();
        assert_eq!(j.frames(), ops.len() as u64);
        assert_eq!(j.syncs(), 1, "whole batch journaled under one sync_data");
        drop(prop);
        // The batch is durable: a reopen replays every operation (folded).
        let recovered = Propagator::with_journal(PropagationStrategy::Deferred, &jpath).unwrap();
        assert_eq!(recovered.stats().replayed, ops.len() as u64);
    }

    #[test]
    fn with_journal_policy_applies_group_commit() {
        let (db, mut coll, paras) = setup();
        let jpath = journal_tmp("policy_prop.journal");
        let mut prop = Propagator::with_journal_policy(
            PropagationStrategy::Deferred,
            &jpath,
            crate::journal::SyncPolicy::GroupCommit {
                max_frames: 4,
                max_delay: std::time::Duration::from_secs(3600),
            },
        )
        .unwrap();
        let ctx = db.method_ctx();
        // Two modifies of each para: 2 * len(paras) = 4 frames → 1 sync.
        for _ in 0..2 {
            for &p in &paras {
                prop.record(&ctx, &mut coll, PendingOp::Modify(p)).unwrap();
            }
        }
        assert_eq!(prop.journal().unwrap().frames(), 4);
        assert_eq!(prop.journal().unwrap().syncs(), 1, "grouped, not per-frame");
    }

    #[test]
    fn eager_beats_deferred_in_applied_ops_for_churn() {
        // The quantitative claim behind E7: under churn (insert+delete of
        // the same objects), deferred-with-cancellation applies strictly
        // fewer IRS operations.
        let (mut db, mut coll_eager, _) = setup();
        let mut coll_deferred = Collection::new("d", CollectionSetup::default());
        coll_deferred
            .index_objects(&db, "ACCESS p FROM p IN PARA")
            .unwrap();

        let mut eager = Propagator::new(PropagationStrategy::Eager);
        let mut deferred = Propagator::new(PropagationStrategy::Deferred);
        for i in 0..10 {
            let oid = new_para(&mut db, &format!("transient text {i}"));
            let ctx = db.method_ctx();
            eager
                .record(&ctx, &mut coll_eager, PendingOp::Insert(oid))
                .unwrap();
            eager
                .record(&ctx, &mut coll_eager, PendingOp::Delete(oid))
                .unwrap();
            deferred
                .record(&ctx, &mut coll_deferred, PendingOp::Insert(oid))
                .unwrap();
            deferred
                .record(&ctx, &mut coll_deferred, PendingOp::Delete(oid))
                .unwrap();
        }
        let ctx = db.method_ctx();
        deferred.flush(&ctx, &mut coll_deferred).unwrap();
        assert_eq!(eager.stats().applied, 20);
        assert_eq!(deferred.stats().applied, 0);
        assert_eq!(deferred.stats().cancelled, 20);
    }
}
