//! Durable journal for deferred update propagation (paper Section 4.6).
//!
//! The paper's deferred propagation batches update operations in an
//! in-memory log — which means a crash between the database commit and
//! the flush silently loses IRS updates, and the eager/deferred
//! trade-off measured in E7 would be meaningless in a durable system.
//! [`Journal`] fixes that: every recorded operation is appended to an
//! append-only, checksummed, fsynced file *before* it enters the
//! in-memory log, and [`Journal::open`] replays the surviving frames so
//! pending updates outlive a crash.
//!
//! **Frame format** (all integers little-endian):
//!
//! ```text
//! [len: u32] [payload: tag u8 ++ oid u64] [crc32(payload): u32]
//! ```
//!
//! Replay stops at the first torn or corrupt frame and truncates the
//! file back to the last consistent prefix — the same
//! discard-the-torn-tail policy as the OODB write-ahead log.
//!
//! **Group commit:** by default every appended frame is fsynced on its
//! own ([`SyncPolicy::Immediate`]). [`SyncPolicy::GroupCommit`] and
//! [`Journal::append_batch`] amortise the `sync_data` over several
//! frames — size- and time-bounded — trading the unsynced tail of the
//! current group (recovered as a torn write) for an order of magnitude
//! fewer disk round-trips under churn.
//!
//! **Cancellation at append time:** the paper's operation-cancellation
//! optimisation is applied to the journal too. When the file holds at
//! least twice as many frames as the folded in-memory log (and at least
//! [`Journal::COMPACT_MIN`] frames), the journal is atomically rewritten
//! to exactly the folded operations, so insert+delete churn cannot grow
//! the file without bound.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use oodb::Oid;

use crate::error::{CouplingError, Result};
use crate::propagate::PendingOp;

/// Longest frame payload `open` accepts; larger lengths mark corruption.
const MAX_PAYLOAD: usize = 64;

fn io_err(e: std::io::Error) -> CouplingError {
    CouplingError::Irs(irs::IrsError::Io(e))
}

/// Serialise one raw payload as a CRC-framed record.
fn raw_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&irs::persist::crc32(payload).to_le_bytes());
    out
}

/// Read the frame starting at `pos`, if a complete, CRC-valid one is
/// there. Returns the payload slice and the offset just past the frame;
/// `None` marks a torn/corrupt tail (or clean end of input).
fn next_raw_frame(bytes: &[u8], pos: usize, max_payload: usize) -> Option<(&[u8], usize)> {
    if pos + 4 > bytes.len() {
        return None;
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&bytes[pos..pos + 4]);
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > max_payload {
        return None;
    }
    let end = pos.checked_add(4 + len + 4)?;
    if end > bytes.len() {
        return None;
    }
    let payload = &bytes[pos + 4..pos + 4 + len];
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(&bytes[pos + 4 + len..end]);
    if irs::persist::crc32(payload) != u32::from_le_bytes(crc_bytes) {
        return None;
    }
    Some((payload, end))
}

fn encode_op(op: PendingOp) -> [u8; 9] {
    let (tag, oid) = match op {
        PendingOp::Insert(o) => (1u8, o),
        PendingOp::Modify(o) => (2u8, o),
        PendingOp::Delete(o) => (3u8, o),
    };
    let mut payload = [0u8; 9];
    payload[0] = tag;
    payload[1..].copy_from_slice(&oid.0.to_le_bytes());
    payload
}

fn decode_op(payload: &[u8]) -> Option<PendingOp> {
    if payload.len() != 9 {
        return None;
    }
    let mut oid_bytes = [0u8; 8];
    oid_bytes.copy_from_slice(&payload[1..]);
    let oid = Oid(u64::from_le_bytes(oid_bytes));
    match payload[0] {
        1 => Some(PendingOp::Insert(oid)),
        2 => Some(PendingOp::Modify(oid)),
        3 => Some(PendingOp::Delete(oid)),
        _ => None,
    }
}

fn frame(op: PendingOp) -> Vec<u8> {
    raw_frame(&encode_op(op))
}

/// Parse the longest valid frame prefix of `bytes`; returns the decoded
/// operations and the byte length of the valid prefix.
fn parse_frames(bytes: &[u8]) -> (Vec<PendingOp>, usize) {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while let Some((payload, end)) = next_raw_frame(bytes, pos, MAX_PAYLOAD) {
        let Some(op) = decode_op(payload) else { break };
        ops.push(op);
        pos = end;
    }
    (ops, pos)
}

/// When appended frames are made durable (`sync_data`).
///
/// The default, [`SyncPolicy::Immediate`], fsyncs after every frame —
/// maximum durability, one disk round-trip per recorded operation. Under
/// heavy deferred churn that sync dominates; [`SyncPolicy::GroupCommit`]
/// amortises it by letting several frames ride one `sync_data`, bounded
/// in both count and time. Frames are still *written* immediately, so the
/// only window a crash can lose is the unsynced tail of the current
/// group — which replay then truncates away cleanly, exactly like a torn
/// write. Group commit is opt-in; crash-recovery semantics for the
/// default policy are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `sync_data` after every appended frame.
    #[default]
    Immediate,
    /// Batch frames per `sync_data`: sync once `max_frames` frames are
    /// unsynced or `max_delay` has passed since the first unsynced frame,
    /// whichever comes first. [`Journal::append_batch`], [`Journal::sync`],
    /// [`Journal::rewrite`], and [`Journal::clear`] always leave the file
    /// synced regardless of policy.
    GroupCommit {
        /// Sync after this many unsynced frames (floored at 1).
        max_frames: usize,
        /// Sync once the oldest unsynced frame is this old.
        max_delay: Duration,
    },
}

/// An append-only, checksummed, fsynced file of pending propagation
/// operations. Owned by [`crate::Propagator`]; see the module docs for
/// format and durability guarantees.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    frames: u64,
    rewrites: u64,
    policy: SyncPolicy,
    /// Frames written but not yet covered by a `sync_data`.
    unsynced: u64,
    /// When the oldest unsynced frame was written.
    since: Option<Instant>,
    syncs: u64,
}

impl Journal {
    /// Minimum frame count before compaction is considered.
    pub const COMPACT_MIN: u64 = 8;

    /// Open (or create) the journal at `path`, replaying surviving
    /// frames. A torn or corrupt tail is truncated away; the returned
    /// operations are the journal's last consistent state in append
    /// order.
    pub fn open(path: &Path) -> Result<(Journal, Vec<PendingOp>)> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(e)),
        };
        let (ops, valid_len) = parse_frames(&bytes);
        if valid_len < bytes.len() {
            // Crash artifact: drop the torn tail so appends continue from
            // a consistent prefix.
            let f = OpenOptions::new().write(true).open(path).map_err(io_err)?;
            f.set_len(valid_len as u64).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        let journal = Journal {
            path: path.to_path_buf(),
            file,
            frames: ops.len() as u64,
            rewrites: 0,
            policy: SyncPolicy::default(),
            unsynced: 0,
            since: None,
            syncs: 0,
        };
        Ok((journal, ops))
    }

    /// The sync policy in effect.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Change when appended frames are fsynced. Takes effect for
    /// subsequent appends; any currently unsynced frames keep their
    /// original deadline behavior under the new policy.
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.policy = policy;
    }

    /// `sync_data` calls issued since open — the metric group commit
    /// exists to shrink.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames currently in the file.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Compaction rewrites performed since open.
    pub fn rewrites(&self) -> u64 {
        self.rewrites
    }

    fn sync_now(&mut self) -> Result<()> {
        self.file.sync_data().map_err(io_err)?;
        self.syncs += 1;
        self.unsynced = 0;
        self.since = None;
        Ok(())
    }

    /// Sync bookkeeping after `n` frames were written: under
    /// [`SyncPolicy::Immediate`] sync now; under group commit sync only
    /// when the count or age bound is hit.
    fn after_write(&mut self, n: u64) -> Result<()> {
        self.unsynced += n;
        if self.since.is_none() {
            self.since = Some(Instant::now());
        }
        let due = match self.policy {
            SyncPolicy::Immediate => true,
            SyncPolicy::GroupCommit {
                max_frames,
                max_delay,
            } => {
                self.unsynced >= (max_frames as u64).max(1)
                    || self.since.is_some_and(|t| t.elapsed() >= max_delay)
            }
        };
        if due {
            self.sync_now()
        } else {
            Ok(())
        }
    }

    /// Append one operation. Under the default policy the frame is
    /// written, flushed, and fsynced before this returns; under
    /// [`SyncPolicy::GroupCommit`] the fsync may be deferred to a batch
    /// boundary (see [`Journal::sync`]).
    pub fn append(&mut self, op: PendingOp) -> Result<()> {
        self.file.write_all(&frame(op)).map_err(io_err)?;
        self.frames += 1;
        self.after_write(1)
    }

    /// Durably append several operations with **one** `sync_data`: all
    /// frames are written in a single `write_all` and the batch is made
    /// durable together — the group-commit fast path for bulk
    /// propagation, regardless of the configured policy.
    pub fn append_batch(&mut self, ops: &[PendingOp]) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut out = Vec::with_capacity(ops.len() * 17);
        for &op in ops {
            out.extend_from_slice(&frame(op));
        }
        self.file.write_all(&out).map_err(io_err)?;
        self.frames += ops.len() as u64;
        self.unsynced += ops.len() as u64;
        self.sync_now()
    }

    /// Force any unsynced frames to disk. No-op when everything already
    /// is; the group-commit time bound is the caller's to enforce (call
    /// this from a timer, a flush, or a commit point).
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced > 0 {
            self.sync_now()
        } else {
            Ok(())
        }
    }

    /// Atomically replace the journal's contents with exactly `ops`
    /// (compaction: the folded log after cancellation). Temp file +
    /// fsync + rename, so a crash leaves either the old or the new
    /// journal.
    pub fn rewrite(&mut self, ops: &[PendingOp]) -> Result<()> {
        let mut out = Vec::with_capacity(ops.len() * 17);
        for &op in ops {
            out.extend_from_slice(&frame(op));
        }
        let file_name = self.path.file_name().ok_or_else(|| {
            io_err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("journal path {} has no file name", self.path.display()),
            ))
        })?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = self.path.with_file_name(tmp_name);
        {
            let mut f = File::create(&tmp).map_err(io_err)?;
            f.write_all(&out).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(io_err)?;
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Ok(dir) = File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        // The old append handle points at the unlinked inode; reopen.
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(io_err)?;
        self.frames = ops.len() as u64;
        self.rewrites += 1;
        // The rewritten file was fully synced before the rename.
        self.unsynced = 0;
        self.since = None;
        Ok(())
    }

    /// Empty the journal (after a fully successful flush).
    pub fn clear(&mut self) -> Result<()> {
        self.file.set_len(0).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        self.syncs += 1;
        self.frames = 0;
        self.unsynced = 0;
        self.since = None;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Raw record log
// ---------------------------------------------------------------------

/// An append-only, checksummed, fsynced file of *opaque* records —
/// the same `[len][payload][crc32]` framing [`Journal`] uses for
/// propagation operations, generalised so other subsystems (the update
/// task ledger in [`crate::tasks`]) can persist their own record types
/// without reinventing torn-tail recovery.
///
/// Differences from [`Journal`]: payloads are caller-defined byte
/// strings with a caller-chosen size cap (task records carry document
/// text, so the 9-byte operation cap does not apply), and every append
/// is made durable immediately — a task ledger records state
/// *transitions*, which are few and must not be lost.
///
/// The framing is byte-compatible: replay stops at the first torn or
/// corrupt frame and truncates the file back to the last consistent
/// prefix, exactly like the propagation journal. A pre-existing file
/// written by an older version simply replays whatever records it
/// holds; an absent file opens empty.
#[derive(Debug)]
pub struct RecordLog {
    path: PathBuf,
    file: File,
    records: u64,
    max_payload: usize,
}

impl RecordLog {
    /// Open (or create) the record log at `path`, replaying surviving
    /// records. A torn or corrupt tail is truncated away; the returned
    /// payloads are the log's last consistent state in append order.
    /// `max_payload` bounds accepted record sizes on both read and
    /// write — a declared length above it marks corruption.
    pub fn open(path: &Path, max_payload: usize) -> Result<(RecordLog, Vec<Vec<u8>>)> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(e)),
        };
        let mut records = Vec::new();
        let mut valid_len = 0usize;
        while let Some((payload, end)) = next_raw_frame(&bytes, valid_len, max_payload) {
            records.push(payload.to_vec());
            valid_len = end;
        }
        if valid_len < bytes.len() {
            let f = OpenOptions::new().write(true).open(path).map_err(io_err)?;
            f.set_len(valid_len as u64).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        let log = RecordLog {
            path: path.to_path_buf(),
            file,
            records: records.len() as u64,
            max_payload,
        };
        Ok((log, records))
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records currently in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    fn check_len(&self, payload: &[u8]) -> Result<()> {
        if payload.is_empty() || payload.len() > self.max_payload {
            return Err(io_err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "record payload of {} bytes outside (0, {}]",
                    payload.len(),
                    self.max_payload
                ),
            )));
        }
        Ok(())
    }

    /// Durably append one record: written, flushed, and fsynced before
    /// this returns.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        self.append_batch(std::slice::from_ref(&payload))
    }

    /// Durably append several records with **one** `sync_data` — the
    /// group-commit path for multi-record transitions (e.g. marking a
    /// whole task batch started).
    pub fn append_batch<P: AsRef<[u8]>>(&mut self, payloads: &[P]) -> Result<()> {
        if payloads.is_empty() {
            return Ok(());
        }
        let mut out = Vec::new();
        for p in payloads {
            let p = p.as_ref();
            self.check_len(p)?;
            out.extend_from_slice(&raw_frame(p));
        }
        self.file.write_all(&out).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        self.records += payloads.len() as u64;
        Ok(())
    }

    /// Atomically replace the log's contents with exactly `payloads`
    /// (compaction). Temp file + fsync + rename, so a crash leaves
    /// either the old or the new log.
    pub fn rewrite<P: AsRef<[u8]>>(&mut self, payloads: &[P]) -> Result<()> {
        let mut out = Vec::new();
        for p in payloads {
            self.check_len(p.as_ref())?;
            out.extend_from_slice(&raw_frame(p.as_ref()));
        }
        let file_name = self.path.file_name().ok_or_else(|| {
            io_err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("record log path {} has no file name", self.path.display()),
            ))
        })?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = self.path.with_file_name(tmp_name);
        {
            let mut f = File::create(&tmp).map_err(io_err)?;
            f.write_all(&out).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(io_err)?;
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Ok(dir) = File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(io_err)?;
        self.records = payloads.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("coupling-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("round_trip.journal");
        let ops = vec![
            PendingOp::Insert(Oid(1)),
            PendingOp::Modify(Oid(2)),
            PendingOp::Delete(Oid(3)),
        ];
        {
            let (mut j, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            for &op in &ops {
                j.append(op).unwrap();
            }
            assert_eq!(j.frames(), 3);
        }
        let (j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, ops);
        assert_eq!(j.frames(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_consistent_state() {
        let path = tmp("torn.journal");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(PendingOp::Insert(Oid(1))).unwrap();
            j.append(PendingOp::Modify(Oid(2))).unwrap();
        }
        // Cut into the second frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, vec![PendingOp::Insert(Oid(1))]);
        assert_eq!(j.frames(), 1);
        // The file itself was truncated to the valid prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 17);
    }

    #[test]
    fn bit_flip_inside_a_frame_stops_replay_there() {
        let path = tmp("bitflip.journal");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(PendingOp::Insert(Oid(1))).unwrap();
            j.append(PendingOp::Delete(Oid(2))).unwrap();
        }
        // Flip a payload byte of the second frame (offset 17 + 5).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[22] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, vec![PendingOp::Insert(Oid(1))]);
    }

    #[test]
    fn rewrite_compacts_and_appends_continue() {
        let path = tmp("rewrite.journal");
        let (mut j, _) = Journal::open(&path).unwrap();
        for i in 0..10 {
            j.append(PendingOp::Insert(Oid(i))).unwrap();
        }
        j.rewrite(&[PendingOp::Insert(Oid(99))]).unwrap();
        assert_eq!(j.frames(), 1);
        assert_eq!(j.rewrites(), 1);
        // Appends after a rewrite land in the new file.
        j.append(PendingOp::Delete(Oid(99))).unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(
            replayed,
            vec![PendingOp::Insert(Oid(99)), PendingOp::Delete(Oid(99))]
        );
    }

    #[test]
    fn clear_empties_the_file() {
        let path = tmp("clear.journal");
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(PendingOp::Insert(Oid(1))).unwrap();
        j.clear().unwrap();
        assert_eq!(j.frames(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert!(replayed.is_empty());
    }

    #[test]
    fn immediate_policy_syncs_every_frame() {
        let path = tmp("sync_immediate.journal");
        let (mut j, _) = Journal::open(&path).unwrap();
        for i in 0..3 {
            j.append(PendingOp::Insert(Oid(i))).unwrap();
        }
        assert_eq!(j.syncs(), 3, "one sync_data per frame by default");
    }

    #[test]
    fn group_commit_batches_syncs_by_count() {
        let path = tmp("sync_group.journal");
        let (mut j, _) = Journal::open(&path).unwrap();
        j.set_sync_policy(SyncPolicy::GroupCommit {
            max_frames: 4,
            max_delay: Duration::from_secs(3600),
        });
        for i in 0..8 {
            j.append(PendingOp::Insert(Oid(i))).unwrap();
        }
        assert_eq!(j.syncs(), 2, "8 frames, groups of 4: two sync_data");
        // A ninth frame stays unsynced until forced.
        j.append(PendingOp::Insert(Oid(8))).unwrap();
        assert_eq!(j.syncs(), 2);
        j.sync().unwrap();
        assert_eq!(j.syncs(), 3);
        j.sync().unwrap();
        assert_eq!(j.syncs(), 3, "sync with nothing pending is a no-op");
        drop(j);
        // Every frame (synced or not) was written; replay sees all nine.
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 9);
    }

    #[test]
    fn group_commit_time_bound_forces_a_sync() {
        let path = tmp("sync_delay.journal");
        let (mut j, _) = Journal::open(&path).unwrap();
        j.set_sync_policy(SyncPolicy::GroupCommit {
            max_frames: 1000,
            max_delay: Duration::from_millis(0),
        });
        // Zero delay: the age bound is already exceeded at every append.
        j.append(PendingOp::Insert(Oid(1))).unwrap();
        assert_eq!(j.syncs(), 1);
    }

    #[test]
    fn append_batch_is_one_sync_and_replays_in_order() {
        let path = tmp("batch.journal");
        let ops = vec![
            PendingOp::Insert(Oid(1)),
            PendingOp::Modify(Oid(2)),
            PendingOp::Delete(Oid(3)),
            PendingOp::Modify(Oid(4)),
        ];
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append_batch(&ops).unwrap();
            assert_eq!(j.syncs(), 1, "whole batch rides one sync_data");
            assert_eq!(j.frames(), 4);
            j.append_batch(&[]).unwrap();
            assert_eq!(j.syncs(), 1, "empty batch is free");
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, ops);
    }

    #[test]
    fn torn_batch_tail_recovers_prefix() {
        let path = tmp("batch_torn.journal");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append_batch(&[PendingOp::Insert(Oid(1)), PendingOp::Insert(Oid(2))])
                .unwrap();
        }
        // Tear into the second frame of the batch, as a crash between
        // write and sync could.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, vec![PendingOp::Insert(Oid(1))]);
    }

    #[test]
    fn empty_or_missing_journal_opens_clean() {
        let path = tmp("fresh.journal");
        let (j, replayed) = Journal::open(&path).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(j.frames(), 0);
        assert!(path.exists(), "open creates the file");
    }

    #[test]
    fn record_log_round_trip_and_torn_tail() {
        let path = tmp("records.log");
        {
            let (mut log, replayed) = RecordLog::open(&path, 1024).unwrap();
            assert!(replayed.is_empty());
            log.append(b"alpha").unwrap();
            log.append_batch(&[b"beta".as_slice(), b"gamma".as_slice()])
                .unwrap();
            assert_eq!(log.records(), 3);
        }
        {
            let (_, replayed) = RecordLog::open(&path, 1024).unwrap();
            assert_eq!(
                replayed,
                vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
            );
        }
        // Tear into the last record; the prefix survives.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let (log, replayed) = RecordLog::open(&path, 1024).unwrap();
        assert_eq!(replayed, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(log.records(), 2);
    }

    #[test]
    fn record_log_rejects_oversize_and_empty_payloads() {
        let path = tmp("records_cap.log");
        let (mut log, _) = RecordLog::open(&path, 8).unwrap();
        assert!(
            log.append(b"123456789").is_err(),
            "9 bytes over an 8-byte cap"
        );
        assert!(log.append(b"").is_err(), "empty payloads are unframeable");
        assert!(log.append(b"12345678").is_ok());
        // A record over the reader's cap stops replay there.
        let (_, replayed) = RecordLog::open(&path, 4).unwrap();
        assert!(replayed.is_empty());
    }

    #[test]
    fn record_log_rewrite_compacts() {
        let path = tmp("records_rewrite.log");
        let (mut log, _) = RecordLog::open(&path, 64).unwrap();
        for i in 0..10u8 {
            log.append(&[i + 1]).unwrap();
        }
        log.rewrite(&[b"only".as_slice()]).unwrap();
        assert_eq!(log.records(), 1);
        log.append(b"after").unwrap();
        drop(log);
        let (_, replayed) = RecordLog::open(&path, 64).unwrap();
        assert_eq!(replayed, vec![b"only".to_vec(), b"after".to_vec()]);
    }
}
