//! `deriveIRSValue` — computing IRS values for objects that are *not*
//! represented in an IRS collection, from the values of related objects.
//!
//! This is the paper's central answer to redundancy in hierarchical
//! documents (Section 4.3.1 alternative (4), Section 4.5.2): index only
//! the paragraphs, and *derive* document-level IRS values from paragraph
//! values. "With our framework the computation is left open to the
//! application" — the built-in schemes cover everything Section 4.5.2
//! discusses:
//!
//! * [`DerivationScheme::Max`] / [`DerivationScheme::Avg`] — the
//!   [CST92] suggestions ("compute the average or maximum of IRS values
//!   of all components"). The paper's own tests used Max.
//! * [`DerivationScheme::WeightedByType`] — weighting by component
//!   element type ([Wil94]).
//! * [`DerivationScheme::LengthWeighted`] — taking component length into
//!   account, as INQUERY itself does.
//! * [`DerivationScheme::SubqueryAware`] — the paper's Figure 4
//!   argument: "the information how relevant elements are to the
//!   subqueries must be exploited. Hence, first of all, the subqueries
//!   need to be identified." The scheme decomposes the query into leaf
//!   subqueries, derives a per-subquery value (max over components), and
//!   recombines them through the query's own operator tree. This is what
//!   ranks M3 (both terms present, in different paragraphs) above M4
//!   (only one term present twice).

use std::collections::HashMap;

use irs::parse_query;
use irs::query::QueryNode;
use oodb::{MethodCtx, Oid, Value};

use crate::textmode::subtree_text;

/// Access to a collection's per-object IRS values, as derivation needs
/// it. Implemented by [`crate::Collection`]; test doubles implement it
/// directly.
pub trait IrsAccess {
    /// True if `oid` has an IRS document in the collection.
    fn is_represented(&self, oid: Oid) -> bool;

    /// IRS value of a *represented* object for `query` (0.0 when the
    /// object is not part of the IRS result).
    fn value_of(&self, ctx: &MethodCtx<'_>, query: &str, oid: Oid) -> f64;

    /// The retrieval model's score for a document with *no* evidence —
    /// the inference network's default belief (0.4), 0.0 for set- and
    /// similarity-oriented models. Subquery-aware derivation floors
    /// per-subquery evidence here so missing terms behave as they would
    /// for represented objects.
    fn default_score(&self) -> f64 {
        0.0
    }
}

/// How an unrepresented object's IRS value is computed from its
/// components' values.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum DerivationScheme {
    /// Maximum component value (the paper's own test implementation:
    /// "iterating through the elements components and determining the
    /// maximal IRS value").
    #[default]
    Max,
    /// Mean component value.
    Avg,
    /// Sum of component values, clamped to 1.0.
    Sum,
    /// Weighted mean with per-element-type weights; unlisted types weigh
    /// 1.0.
    WeightedByType(HashMap<String, f64>),
    /// Mean weighted by component text length.
    LengthWeighted,
    /// Per-subquery maxima recombined through the query operator tree.
    SubqueryAware,
}

/// Find the *nearest represented descendants* of `oid`: depth-first, stop
/// descending at the first represented object on each path. These are
/// the "components" whose IRS values derivation combines.
pub fn represented_components(ctx: &MethodCtx<'_>, access: &impl IrsAccess, oid: Oid) -> Vec<Oid> {
    let mut out = Vec::new();
    let Ok(obj) = ctx.store.get(oid) else {
        return out;
    };
    let Some(children) = obj.attr_ref("children").and_then(Value::as_list) else {
        return out;
    };
    for c in children {
        let Some(child) = c.as_oid() else { continue };
        if access.is_represented(child) {
            out.push(child);
        } else {
            out.extend(represented_components(ctx, access, child));
        }
    }
    out
}

impl DerivationScheme {
    /// Derive the IRS value of `oid` for `query`.
    pub fn derive(
        &self,
        ctx: &MethodCtx<'_>,
        access: &impl IrsAccess,
        query: &str,
        oid: Oid,
    ) -> f64 {
        let components = represented_components(ctx, access, oid);
        if components.is_empty() {
            return 0.0;
        }
        match self {
            DerivationScheme::Max => components
                .iter()
                .map(|&c| access.value_of(ctx, query, c))
                .fold(0.0, f64::max),
            DerivationScheme::Avg => {
                let sum: f64 = components
                    .iter()
                    .map(|&c| access.value_of(ctx, query, c))
                    .sum();
                sum / components.len() as f64
            }
            DerivationScheme::Sum => {
                let sum: f64 = components
                    .iter()
                    .map(|&c| access.value_of(ctx, query, c))
                    .sum();
                sum.min(1.0)
            }
            DerivationScheme::WeightedByType(weights) => {
                let mut num = 0.0;
                let mut den = 0.0;
                for &c in &components {
                    let w = ctx
                        .store
                        .get(c)
                        .ok()
                        .map(|obj| ctx.schema.name(obj.class))
                        .and_then(|name| weights.get(name).copied())
                        .unwrap_or(1.0);
                    num += w * access.value_of(ctx, query, c);
                    den += w;
                }
                if den == 0.0 {
                    0.0
                } else {
                    num / den
                }
            }
            DerivationScheme::LengthWeighted => {
                let mut num = 0.0;
                let mut den = 0.0;
                for &c in &components {
                    let w = subtree_text(ctx, c).chars().count().max(1) as f64;
                    num += w * access.value_of(ctx, query, c);
                    den += w;
                }
                num / den
            }
            DerivationScheme::SubqueryAware => {
                let Ok(node) = parse_query(query) else {
                    // Unparseable query: fall back to whole-query max.
                    return DerivationScheme::Max.derive(ctx, access, query, oid);
                };
                let floor = access.default_score();
                eval_subqueries(&node, &mut |leaf| {
                    let sub = leaf.to_string();
                    components
                        .iter()
                        .map(|&c| access.value_of(ctx, &sub, c))
                        .fold(floor, f64::max)
                })
            }
        }
    }
}

/// Evaluate a query operator tree bottom-up, obtaining leaf (term or
/// phrase) beliefs from `leaf_value` and combining with the
/// inference-network algebra (the coupling knows "half a dozen operators'
/// exact semantics", paper Section 4.5.4).
fn eval_subqueries(node: &QueryNode, leaf_value: &mut impl FnMut(&QueryNode) -> f64) -> f64 {
    match node {
        QueryNode::Term(_) | QueryNode::Phrase(_) | QueryNode::Near { .. } => leaf_value(node),
        QueryNode::And(cs) => cs.iter().map(|c| eval_subqueries(c, leaf_value)).product(),
        QueryNode::Or(cs) => {
            1.0 - cs
                .iter()
                .map(|c| 1.0 - eval_subqueries(c, leaf_value))
                .product::<f64>()
        }
        QueryNode::Not(c) => 1.0 - eval_subqueries(c, leaf_value),
        QueryNode::Sum(cs) => {
            if cs.is_empty() {
                0.0
            } else {
                cs.iter()
                    .map(|c| eval_subqueries(c, leaf_value))
                    .sum::<f64>()
                    / cs.len() as f64
            }
        }
        QueryNode::WSum(ws) => {
            let total: f64 = ws.iter().map(|(w, _)| w).sum();
            if total == 0.0 {
                0.0
            } else {
                ws.iter()
                    .map(|(w, c)| w * eval_subqueries(c, leaf_value))
                    .sum::<f64>()
                    / total
            }
        }
        QueryNode::Max(cs) => cs
            .iter()
            .map(|c| eval_subqueries(c, leaf_value))
            .fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb::Database;

    /// Test double: fixed per-(query, oid) values; everything in `values`
    /// counts as represented.
    struct Fixed {
        values: HashMap<(String, Oid), f64>,
        represented: Vec<Oid>,
    }

    impl IrsAccess for Fixed {
        fn is_represented(&self, oid: Oid) -> bool {
            self.represented.contains(&oid)
        }
        fn value_of(&self, _ctx: &MethodCtx<'_>, query: &str, oid: Oid) -> f64 {
            *self.values.get(&(query.to_string(), oid)).unwrap_or(&0.0)
        }
    }

    /// Build the paper's Figure 4 fragment: documents with paragraph
    /// children; paragraphs carry `text` and are the represented level.
    fn figure4_db() -> (Database, HashMap<&'static str, Oid>) {
        let mut db = Database::in_memory();
        db.define_class("IRSObject", None).unwrap();
        db.define_class("MMFDOC", Some("IRSObject")).unwrap();
        db.define_class("PARA", Some("IRSObject")).unwrap();
        let doc_c = db.schema().class_id("MMFDOC").unwrap();
        let para_c = db.schema().class_id("PARA").unwrap();
        let mut txn = db.begin();
        let mut oids = HashMap::new();
        // M2 has P3 (www) and P4 (www+nii); M3 has P5 (www) and P6 (nii);
        // M4 has P7 (nii) and P8 (nii). (Subset of Figure 4 sufficient for
        // the ranking claims.)
        for (doc, paras) in [
            ("M2", vec!["P3", "P4"]),
            ("M3", vec!["P5", "P6"]),
            ("M4", vec!["P7", "P8"]),
        ] {
            let d = db.create_object(&mut txn, doc_c).unwrap();
            let mut kids = Vec::new();
            for p in &paras {
                let po = db.create_object(&mut txn, para_c).unwrap();
                db.set_attr(&mut txn, po, "parent", Value::Oid(d)).unwrap();
                db.set_attr(
                    &mut txn,
                    po,
                    "text",
                    Value::from(format!("text of {p}").as_str()),
                )
                .unwrap();
                kids.push(Value::Oid(po));
                oids.insert(*p, po);
            }
            db.set_attr(&mut txn, d, "children", Value::List(kids))
                .unwrap();
            oids.insert(doc, d);
        }
        db.commit(txn).unwrap();
        (db, oids)
    }

    /// Beliefs mirroring Figure 4: P4 relevant to both terms, P5 to www,
    /// P6/P7/P8 to nii-or-www as labelled.
    fn figure4_access(oids: &HashMap<&'static str, Oid>) -> Fixed {
        let mut values = HashMap::new();
        let rel = 0.8;
        let irr = 0.1;
        let set = |m: &mut HashMap<(String, Oid), f64>,
                   q: &str,
                   p: &str,
                   v: f64,
                   oids: &HashMap<&str, Oid>| {
            m.insert((q.to_string(), oids[p]), v);
        };
        for p in ["P3", "P4", "P5", "P6", "P7", "P8"] {
            set(&mut values, "www", p, irr, oids);
            set(&mut values, "nii", p, irr, oids);
            // Whole-query values for the non-subquery-aware schemes: the
            // IRS ranks P4 highest since it alone matches both terms.
            set(&mut values, "#and(www nii)", p, irr, oids);
        }
        set(&mut values, "www", "P3", rel, oids);
        set(&mut values, "www", "P4", rel, oids);
        set(&mut values, "nii", "P4", rel, oids);
        set(&mut values, "www", "P5", rel, oids);
        set(&mut values, "nii", "P6", rel, oids);
        set(&mut values, "nii", "P7", rel, oids);
        set(&mut values, "nii", "P8", rel, oids);
        // Whole-query #and values (what a real IRS would return for the
        // conjunction evaluated on paragraphs): high only for P4.
        set(&mut values, "#and(www nii)", "P4", 0.64, oids);
        set(&mut values, "#and(www nii)", "P3", 0.3, oids);
        set(&mut values, "#and(www nii)", "P5", 0.3, oids);
        set(&mut values, "#and(www nii)", "P6", 0.3, oids);
        set(&mut values, "#and(www nii)", "P7", 0.3, oids);
        set(&mut values, "#and(www nii)", "P8", 0.3, oids);
        let represented = ["P3", "P4", "P5", "P6", "P7", "P8"]
            .iter()
            .map(|p| oids[p])
            .collect();
        Fixed {
            values,
            represented,
        }
    }

    #[test]
    fn components_stop_at_represented_level() {
        let (db, oids) = figure4_db();
        let access = figure4_access(&oids);
        let ctx = db.method_ctx();
        let comps = represented_components(&ctx, &access, oids["M2"]);
        assert_eq!(comps, vec![oids["P3"], oids["P4"]]);
        // A represented object itself has no components above it.
        assert!(represented_components(&ctx, &access, oids["P4"]).is_empty());
    }

    #[test]
    fn figure4_max_scheme_misses_m3() {
        // The paper: "the answer will be document M2, although M3 is
        // relevant, too" — Max over whole-query paragraph values cannot
        // distinguish M3 from M4.
        let (db, oids) = figure4_db();
        let access = figure4_access(&oids);
        let ctx = db.method_ctx();
        let q = "#and(www nii)";
        let m2 = DerivationScheme::Max.derive(&ctx, &access, q, oids["M2"]);
        let m3 = DerivationScheme::Max.derive(&ctx, &access, q, oids["M3"]);
        let m4 = DerivationScheme::Max.derive(&ctx, &access, q, oids["M4"]);
        assert!(m2 > m3, "Max ranks M2 first ({m2} vs {m3})");
        assert_eq!(m3, m4, "Max cannot separate M3 from M4");
    }

    #[test]
    fn figure4_subquery_aware_recovers_m3() {
        // "MMF documents M3 and M4 both contain two 'semi'-relevant
        // paragraphs. Their IRS values, however, should be different,
        // because only M3 is relevant for both terms."
        let (db, oids) = figure4_db();
        let access = figure4_access(&oids);
        let ctx = db.method_ctx();
        let q = "#and(www nii)";
        let scheme = DerivationScheme::SubqueryAware;
        let m2 = scheme.derive(&ctx, &access, q, oids["M2"]);
        let m3 = scheme.derive(&ctx, &access, q, oids["M3"]);
        let m4 = scheme.derive(&ctx, &access, q, oids["M4"]);
        assert!(m3 > m4, "SubqueryAware separates M3 ({m3}) from M4 ({m4})");
        assert!(m2 >= m3, "M2 (co-occurring) still ranks at least as high");
        // M3's both-term evidence: 0.8 * 0.8 = 0.64; M4: 0.8 * 0.1 = 0.08.
        assert!((m3 - 0.64).abs() < 1e-9);
        assert!((m4 - 0.08).abs() < 1e-9);
    }

    #[test]
    fn avg_and_sum_schemes() {
        let (db, oids) = figure4_db();
        let access = figure4_access(&oids);
        let ctx = db.method_ctx();
        let avg = DerivationScheme::Avg.derive(&ctx, &access, "www", oids["M2"]);
        assert!((avg - 0.8).abs() < 1e-9, "both P3, P4 are www-relevant");
        let sum = DerivationScheme::Sum.derive(&ctx, &access, "www", oids["M2"]);
        assert_eq!(sum, 1.0, "0.8 + 0.8 clamps to 1.0");
    }

    #[test]
    fn weighted_by_type_prefers_weighted_classes() {
        let (db, oids) = figure4_db();
        let access = figure4_access(&oids);
        let ctx = db.method_ctx();
        // Weight PARA low: derived values shrink toward the unweighted
        // components (none here), i.e. stay the mean.
        let mut weights = HashMap::new();
        weights.insert("PARA".to_string(), 2.0);
        let w = DerivationScheme::WeightedByType(weights).derive(&ctx, &access, "www", oids["M3"]);
        // M3: P5 = 0.8, P6 = 0.1 → weighted mean with equal weights = 0.45.
        assert!((w - 0.45).abs() < 1e-9);
    }

    #[test]
    fn length_weighted_uses_text_length() {
        let (mut db, oids) = figure4_db();
        // Make P5's text much longer than P6's.
        let mut txn = db.begin();
        db.set_attr(
            &mut txn,
            oids["P5"],
            "text",
            Value::from("x".repeat(1000).as_str()),
        )
        .unwrap();
        db.set_attr(&mut txn, oids["P6"], "text", Value::from("y"))
            .unwrap();
        db.commit(txn).unwrap();
        let access = figure4_access(&oids);
        let ctx = db.method_ctx();
        let v = DerivationScheme::LengthWeighted.derive(&ctx, &access, "www", oids["M3"]);
        // P5 (www-relevant, 0.8) dominates by length.
        assert!(
            v > 0.75,
            "length weighting favours the long relevant paragraph, got {v}"
        );
    }

    #[test]
    fn unrepresented_leafless_object_derives_zero() {
        let (db, oids) = figure4_db();
        let access = Fixed {
            values: HashMap::new(),
            represented: vec![],
        };
        let ctx = db.method_ctx();
        assert_eq!(
            DerivationScheme::Max.derive(&ctx, &access, "www", oids["M2"]),
            0.0
        );
    }

    #[test]
    fn subquery_aware_falls_back_on_unparseable_queries() {
        let (db, oids) = figure4_db();
        let access = figure4_access(&oids);
        let ctx = db.method_ctx();
        let v = DerivationScheme::SubqueryAware.derive(&ctx, &access, "#and(", oids["M2"]);
        // Falls back to Max over the (unparseable) whole query: 0.0.
        assert_eq!(v, 0.0);
    }

    #[test]
    fn operator_tree_evaluation() {
        let mut leaf = |n: &QueryNode| match n {
            QueryNode::Term(t) if t == "a" => 0.8,
            QueryNode::Term(t) if t == "b" => 0.5,
            _ => 0.0,
        };
        let and = parse_query("#and(a b)").unwrap();
        assert!((eval_subqueries(&and, &mut leaf) - 0.4).abs() < 1e-12);
        let or = parse_query("#or(a b)").unwrap();
        assert!((eval_subqueries(&or, &mut leaf) - 0.9).abs() < 1e-12);
        let not = parse_query("#not(a)").unwrap();
        assert!((eval_subqueries(&not, &mut leaf) - 0.2).abs() < 1e-12);
        let wsum = parse_query("#wsum(3 a 1 b)").unwrap();
        assert!((eval_subqueries(&wsum, &mut leaf) - 0.725).abs() < 1e-12);
        let max = parse_query("#max(a b)").unwrap();
        assert!((eval_subqueries(&max, &mut leaf) - 0.8).abs() < 1e-12);
    }
}
