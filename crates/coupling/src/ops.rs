//! IRS operators duplicated as collection methods (paper Section 4.5.4).
//!
//! "IRS-operators can be duplicated as methods of the collection objects.
//! INQUERY's AND-operator, to give an example, corresponds to a method
//! IRSOperatorAND in our implementation. Its parameters are results of
//! IRS queries. Hence, it is possible to calculate conjunction both in
//! the IRS or the OODBMS. Consider the case that the corresponding
//! collection object already knows intermediate results because they
//! have been buffered … Then the second alternative is particularly
//! appealing."
//!
//! The functions here combine buffered [`ResultMap`]s with the
//! inference-network algebra. Documents missing from an operand map
//! contribute `default_belief` (they had no evidence for that
//! subquery). Experiment E6 compares these OODBMS-side combinations
//! against submitting the composite query to the IRS.

use std::collections::HashSet;

use oodb::Oid;

use crate::buffer::ResultMap;

/// INQUERY's default belief for missing evidence.
pub const DEFAULT_BELIEF: f64 = 0.4;

fn union_keys(operands: &[&ResultMap]) -> HashSet<Oid> {
    let mut keys = HashSet::new();
    for m in operands {
        keys.extend(m.keys().copied());
    }
    keys
}

fn combine(operands: &[&ResultMap], f: impl Fn(&[f64]) -> f64) -> ResultMap {
    let mut out = ResultMap::new();
    let mut buf = Vec::with_capacity(operands.len());
    for oid in union_keys(operands) {
        buf.clear();
        for m in operands {
            buf.push(m.get(&oid).copied().unwrap_or(DEFAULT_BELIEF));
        }
        out.insert(oid, f(&buf));
    }
    out
}

/// `IRSOperatorAND`: product of beliefs.
pub fn irs_and(operands: &[&ResultMap]) -> ResultMap {
    combine(operands, |bs| bs.iter().product())
}

/// `IRSOperatorOR`: noisy-or of beliefs.
pub fn irs_or(operands: &[&ResultMap]) -> ResultMap {
    combine(operands, |bs| {
        1.0 - bs.iter().map(|b| 1.0 - b).product::<f64>()
    })
}

/// `IRSOperatorSUM`: mean belief.
pub fn irs_sum(operands: &[&ResultMap]) -> ResultMap {
    combine(operands, |bs| {
        if bs.is_empty() {
            0.0
        } else {
            bs.iter().sum::<f64>() / bs.len() as f64
        }
    })
}

/// `IRSOperatorWSUM`: weighted mean belief. `weights` must parallel
/// `operands`.
pub fn irs_wsum(weights: &[f64], operands: &[&ResultMap]) -> ResultMap {
    assert_eq!(weights.len(), operands.len(), "one weight per operand");
    let total: f64 = weights.iter().sum();
    combine(operands, |bs| {
        if total == 0.0 {
            0.0
        } else {
            bs.iter().zip(weights).map(|(b, w)| b * w).sum::<f64>() / total
        }
    })
}

/// `IRSOperatorMAX`: maximum belief.
pub fn irs_max(operands: &[&ResultMap]) -> ResultMap {
    combine(operands, |bs| {
        bs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    })
}

/// `IRSOperatorNOT`: complement, over the set of documents present in
/// the operand (a full-collection complement needs the collection — the
/// paper's open "closed world" issue, Section 6).
pub fn irs_not(operand: &ResultMap) -> ResultMap {
    operand.iter().map(|(&oid, &b)| (oid, 1.0 - b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(u64, f64)]) -> ResultMap {
        pairs.iter().map(|&(o, v)| (Oid(o), v)).collect()
    }

    #[test]
    fn and_multiplies_with_default_for_missing() {
        let a = map(&[(1, 0.8), (2, 0.6)]);
        let b = map(&[(1, 0.5)]);
        let r = irs_and(&[&a, &b]);
        assert!((r[&Oid(1)] - 0.4).abs() < 1e-12);
        assert!((r[&Oid(2)] - 0.6 * DEFAULT_BELIEF).abs() < 1e-12);
    }

    #[test]
    fn or_is_noisy_or() {
        let a = map(&[(1, 0.5)]);
        let b = map(&[(1, 0.5)]);
        let r = irs_or(&[&a, &b]);
        assert!((r[&Oid(1)] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sum_and_wsum() {
        let a = map(&[(1, 0.2)]);
        let b = map(&[(1, 0.8)]);
        assert!((irs_sum(&[&a, &b])[&Oid(1)] - 0.5).abs() < 1e-12);
        let w = irs_wsum(&[3.0, 1.0], &[&a, &b]);
        assert!((w[&Oid(1)] - 0.35).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one weight per operand")]
    fn wsum_weight_mismatch_panics() {
        let a = map(&[(1, 0.2)]);
        irs_wsum(&[1.0], &[&a, &a]);
    }

    #[test]
    fn max_and_not() {
        let a = map(&[(1, 0.2), (2, 0.9)]);
        let b = map(&[(1, 0.7)]);
        let r = irs_max(&[&a, &b]);
        assert!((r[&Oid(1)] - 0.7).abs() < 1e-12);
        assert!((r[&Oid(2)] - 0.9).abs() < 1e-12);
        let n = irs_not(&a);
        assert!((n[&Oid(1)] - 0.8).abs() < 1e-12);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn empty_operands_yield_empty_results() {
        let empty = ResultMap::new();
        assert!(irs_and(&[&empty, &empty]).is_empty());
        assert!(irs_or(&[&empty]).is_empty());
    }

    /// The equivalence E6 relies on: combining per-term results in the
    /// OODBMS matches evaluating the composite query in the IRS (same
    /// algebra on both sides).
    #[test]
    fn oodbms_side_and_matches_irs_side() {
        use crate::collection::{Collection, CollectionSetup};
        use oodb::Database;
        use sgml::{load_document, parse_document};

        let mut db = Database::in_memory();
        db.define_class("IRSObject", None).unwrap();
        let tree = parse_document(
            "<MMFDOC><PARA>www and nii together here</PARA>\
             <PARA>only www in this one</PARA>\
             <PARA>only nii in this one</PARA></MMFDOC>",
        )
        .unwrap();
        let mut txn = db.begin();
        load_document(&mut db, &mut txn, &tree, "IRSObject").unwrap();
        db.commit(txn).unwrap();

        let mut coll = Collection::new("c", CollectionSetup::default());
        coll.index_objects(&db, "ACCESS p FROM p IN PARA").unwrap();

        let www = coll.get_irs_result("www").unwrap();
        let nii = coll.get_irs_result("nii").unwrap();
        let combined = irs_and(&[&www, &nii]);
        let direct = coll.get_irs_result("#and(www nii)").unwrap();
        for (oid, v) in &direct {
            let c = combined.get(oid).copied().unwrap_or(0.0);
            assert!((c - v).abs() < 1e-9, "oid {oid}: oodbms {c} vs irs {v}");
        }
    }
}
