//! Error type for all OODBMS operations.

use std::fmt;

use crate::oid::Oid;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DbError>;

/// Errors raised by the OODBMS.
#[derive(Debug)]
pub enum DbError {
    /// A class name was defined twice.
    DuplicateClass(String),
    /// A class name is unknown.
    UnknownClass(String),
    /// An OID does not refer to a live object.
    UnknownObject(Oid),
    /// A method name is not registered (for the class or globally).
    UnknownMethod(String),
    /// A method was invoked with wrong arguments.
    BadMethodArgs {
        /// The method that was invoked.
        method: String,
        /// Why the arguments were rejected.
        reason: String,
    },
    /// Query text failed to parse.
    QueryParse {
        /// Human-readable reason.
        reason: String,
        /// Byte offset in the query text.
        offset: usize,
    },
    /// A query referenced an unbound variable or mistyped expression.
    QueryEval(String),
    /// A transaction handle was used after commit/abort.
    InactiveTxn,
    /// The WAL or snapshot file is corrupt.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateClass(n) => write!(f, "class {n:?} already defined"),
            DbError::UnknownClass(n) => write!(f, "unknown class {n:?}"),
            DbError::UnknownObject(oid) => write!(f, "unknown object {oid}"),
            DbError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            DbError::BadMethodArgs { method, reason } => {
                write!(f, "bad arguments for {method}: {reason}")
            }
            DbError::QueryParse { reason, offset } => {
                write!(f, "query parse error at byte {offset}: {reason}")
            }
            DbError::QueryEval(why) => write!(f, "query evaluation error: {why}"),
            DbError::InactiveTxn => write!(f, "transaction is no longer active"),
            DbError::Corrupt(why) => write!(f, "corrupt database file: {why}"),
            DbError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(DbError::UnknownClass("PARA".into())
            .to_string()
            .contains("PARA"));
        assert!(DbError::QueryParse {
            reason: "x".into(),
            offset: 3
        }
        .to_string()
        .contains("byte 3"));
        assert!(DbError::UnknownObject(Oid(7)).to_string().contains('7'));
    }

    #[test]
    fn io_source_preserved() {
        let e = DbError::from(std::io::Error::other("x"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
