//! Small binary-encoding helpers shared by the WAL and snapshot formats,
//! plus the crash-safe file-write primitives the snapshot uses.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use crate::error::{DbError, Result};

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup table, built at
/// compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Crash-safe file write: `payload` plus a 4-byte little-endian CRC-32
/// trailer goes to `<path>.tmp`, is `sync_all`ed, and is atomically
/// renamed over `path`. A crash at any point leaves either the old file
/// or the complete new one.
pub fn atomic_write(path: &Path, payload: &[u8]) -> Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        DbError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("atomic_write: path {} has no file name", path.display()),
        ))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(payload)?;
        f.write_all(&crc32(payload).to_le_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // Persist the rename itself; best-effort across platforms.
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// Read a file written by [`atomic_write`], verify its CRC-32 trailer,
/// and return the payload without the trailer.
pub fn read_verified(path: &Path) -> Result<Vec<u8>> {
    let mut buf = std::fs::read(path)?;
    if buf.len() < 4 {
        return Err(DbError::Corrupt("file shorter than its CRC trailer".into()));
    }
    let crc_pos = buf.len() - 4;
    let mut trailer = [0u8; 4];
    trailer.copy_from_slice(&buf[crc_pos..]);
    let expected = u32::from_le_bytes(trailer);
    let actual = crc32(&buf[..crc_pos]);
    if actual != expected {
        return Err(DbError::Corrupt(format!(
            "crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
        )));
    }
    buf.truncate(crc_pos);
    Ok(buf)
}

/// Append `v` to `buf` as an unsigned LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a varint from `buf` at `*pos`, advancing `*pos`. `None` on
/// truncated or overlong input.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Append a length-prefixed byte string.
pub fn write_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Read a length-prefixed byte string.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= buf.len())?;
    let out = &buf[*pos..end];
    *pos = end;
    Some(out)
}

/// Append a length-prefixed UTF-8 string.
pub fn write_str(buf: &mut Vec<u8>, s: &str) {
    write_bytes(buf, s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn read_str(buf: &[u8], pos: &mut usize) -> Option<String> {
    let bytes = read_bytes(buf, pos)?;
    String::from_utf8(bytes.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn atomic_write_read_verified_round_trip() {
        let dir = std::env::temp_dir().join("oodb-util-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.bin");
        atomic_write(&path, b"snapshot payload").unwrap();
        assert_eq!(read_verified(&path).unwrap(), b"snapshot payload");
        assert!(!path.with_file_name("atomic.bin.tmp").exists());
        // In-place corruption that preserves length is caught by the CRC.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_verified(&path), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn bytes_and_strings_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "hello");
        write_bytes(&mut buf, &[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos).as_deref(), Some("hello"));
        assert_eq!(read_bytes(&buf, &mut pos), Some(&[1u8, 2, 3][..]));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_reads_fail() {
        let mut buf = Vec::new();
        write_str(&mut buf, "hello");
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos), None);
    }

    #[test]
    fn invalid_utf8_string_fails() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, &[0xff, 0xfe]);
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos), None);
    }
}
