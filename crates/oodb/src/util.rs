//! Small binary-encoding helpers shared by the WAL and snapshot formats.

/// Append `v` to `buf` as an unsigned LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a varint from `buf` at `*pos`, advancing `*pos`. `None` on
/// truncated or overlong input.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Append a length-prefixed byte string.
pub fn write_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Read a length-prefixed byte string.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= buf.len())?;
    let out = &buf[*pos..end];
    *pos = end;
    Some(out)
}

/// Append a length-prefixed UTF-8 string.
pub fn write_str(buf: &mut Vec<u8>, s: &str) {
    write_bytes(buf, s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn read_str(buf: &[u8], pos: &mut usize) -> Option<String> {
    let bytes = read_bytes(buf, pos)?;
    String::from_utf8(bytes.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn bytes_and_strings_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "hello");
        write_bytes(&mut buf, &[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos).as_deref(), Some("hello"));
        assert_eq!(read_bytes(&buf, &mut pos), Some(&[1u8, 2, 3][..]));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_reads_fail() {
        let mut buf = Vec::new();
        write_str(&mut buf, "hello");
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos), None);
    }

    #[test]
    fn invalid_utf8_string_fails() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, &[0xff, 0xfe]);
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos), None);
    }
}
