//! The method registry — the OODBMS's extensibility hook.
//!
//! The paper's coupling works precisely because the OODBMS can evaluate
//! application-defined methods inside queries (`p -> getIRSValue(coll,
//! 'WWW') > 0.6`). The registry maps method names to closures; each
//! closure receives a read-only [`MethodCtx`], the receiver OID and the
//! argument values.
//!
//! Methods carry a [`MethodCost`] annotation consumed by the query
//! optimizer: *expensive* methods (IRS calls!) are evaluated after all
//! cheap predicates — the "method-based query-optimization features
//! [AbF95]" the paper names as a prerequisite for mixed-query
//! optimization (Section 4.5.4).

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{DbError, Result};
use crate::oid::Oid;
use crate::schema::Schema;
use crate::store::ObjectStore;
use crate::value::Value;

/// Optimizer cost class of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MethodCost {
    /// In-memory navigation or attribute access.
    Cheap,
    /// Crosses into an external system (e.g. the IRS); evaluate last.
    Expensive,
}

/// Read-only view of the database handed to method implementations.
pub struct MethodCtx<'a> {
    /// The object store.
    pub store: &'a ObjectStore,
    /// The schema.
    pub schema: &'a Schema,
}

/// Signature of a registered method.
pub type MethodFn = Arc<dyn Fn(&MethodCtx<'_>, Oid, &[Value]) -> Result<Value> + Send + Sync>;

/// Named methods callable from queries.
#[derive(Clone, Default)]
pub struct MethodRegistry {
    methods: HashMap<String, (MethodFn, MethodCost)>,
}

impl std::fmt::Debug for MethodRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.methods.keys().collect();
        names.sort();
        f.debug_struct("MethodRegistry")
            .field("methods", &names)
            .finish()
    }
}

impl MethodRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` with an implementation and cost class. Replaces
    /// any previous registration of the same name.
    pub fn register<F>(&mut self, name: &str, cost: MethodCost, f: F)
    where
        F: Fn(&MethodCtx<'_>, Oid, &[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.methods.insert(name.to_string(), (Arc::new(f), cost));
    }

    /// Look up a method.
    pub fn get(&self, name: &str) -> Option<&(MethodFn, MethodCost)> {
        self.methods.get(name)
    }

    /// Cost of `name`, if registered.
    pub fn cost(&self, name: &str) -> Option<MethodCost> {
        self.methods.get(name).map(|(_, c)| *c)
    }

    /// Invoke `name` on `receiver`.
    pub fn invoke(
        &self,
        ctx: &MethodCtx<'_>,
        name: &str,
        receiver: Oid,
        args: &[Value],
    ) -> Result<Value> {
        let (f, _) = self
            .methods
            .get(name)
            .ok_or_else(|| DbError::UnknownMethod(name.to_string()))?;
        f(ctx, receiver, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Object;
    use crate::schema::ClassId;

    fn ctx_parts() -> (ObjectStore, Schema) {
        let mut schema = Schema::new();
        schema.define("A", None).unwrap();
        let mut store = ObjectStore::new();
        let oid = store.allocate_oid();
        let mut obj = Object::new(oid, ClassId(0));
        obj.set_attr("n", Value::Int(21));
        store.put(obj);
        (store, schema)
    }

    #[test]
    fn register_and_invoke() {
        let (store, schema) = ctx_parts();
        let mut reg = MethodRegistry::new();
        reg.register("double", MethodCost::Cheap, |ctx, oid, _args| {
            let n = ctx.store.attr(oid, "n")?;
            Ok(Value::Int(n.as_f64().unwrap_or(0.0) as i64 * 2))
        });
        let ctx = MethodCtx {
            store: &store,
            schema: &schema,
        };
        let v = reg.invoke(&ctx, "double", Oid(1), &[]).unwrap();
        assert_eq!(v, Value::Int(42));
        assert_eq!(reg.cost("double"), Some(MethodCost::Cheap));
    }

    #[test]
    fn unknown_method_errors() {
        let (store, schema) = ctx_parts();
        let reg = MethodRegistry::new();
        let ctx = MethodCtx {
            store: &store,
            schema: &schema,
        };
        assert!(matches!(
            reg.invoke(&ctx, "nope", Oid(1), &[]),
            Err(DbError::UnknownMethod(_))
        ));
        assert_eq!(reg.cost("nope"), None);
    }

    #[test]
    fn registration_replaces() {
        let mut reg = MethodRegistry::new();
        reg.register("m", MethodCost::Cheap, |_, _, _| Ok(Value::Int(1)));
        reg.register("m", MethodCost::Expensive, |_, _, _| Ok(Value::Int(2)));
        assert_eq!(reg.cost("m"), Some(MethodCost::Expensive));
    }

    #[test]
    fn debug_lists_method_names() {
        let mut reg = MethodRegistry::new();
        reg.register("b", MethodCost::Cheap, |_, _, _| Ok(Value::Null));
        reg.register("a", MethodCost::Cheap, |_, _, _| Ok(Value::Null));
        let s = format!("{reg:?}");
        assert!(s.contains('a') && s.contains('b'));
    }
}
