//! Class schema with single inheritance.
//!
//! The paper's framework creates one *element-type class* per element-type
//! definition in a DTD (Section 4.1), all inheriting from the coupling
//! class `IRSObject` (Figure 2's `isA` edge). The schema here supports
//! exactly that: named classes, an optional parent, and subclass queries
//! used when a `FROM x IN Class` clause must range over a class extent
//! including subclasses.

use std::collections::HashMap;

use crate::error::{DbError, Result};

/// Dense class identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Definition of one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name, unique within the schema.
    pub name: String,
    /// Direct superclass, if any.
    pub parent: Option<ClassId>,
}

/// The database schema: a forest of classes.
#[derive(Debug, Default, Clone)]
pub struct Schema {
    classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
}

impl Schema {
    /// Create an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a class. `parent` must already exist.
    pub fn define(&mut self, name: &str, parent: Option<ClassId>) -> Result<ClassId> {
        if self.by_name.contains_key(name) {
            return Err(DbError::DuplicateClass(name.to_string()));
        }
        if let Some(p) = parent {
            if p.0 as usize >= self.classes.len() {
                return Err(DbError::UnknownClass(format!("classid {}", p.0)));
            }
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassDef {
            name: name.to_string(),
            parent,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up a class by name.
    pub fn class_id(&self, name: &str) -> Result<ClassId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DbError::UnknownClass(name.to_string()))
    }

    /// Definition of `id`. Panics on a foreign id.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Name of `id`.
    pub fn name(&self, id: ClassId) -> &str {
        &self.class(id).name
    }

    /// True if `sub` equals `ancestor` or transitively inherits from it.
    pub fn is_subclass(&self, sub: ClassId, ancestor: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.class(c).parent;
        }
        false
    }

    /// All classes that are `ancestor` or below it, in id order.
    pub fn subclasses(&self, ancestor: ClassId) -> Vec<ClassId> {
        (0..self.classes.len() as u32)
            .map(ClassId)
            .filter(|&c| self.is_subclass(c, ancestor))
            .collect()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if no classes are defined.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterate over `(ClassId, &ClassDef)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassDef)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, d)| (ClassId(i as u32), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut s = Schema::new();
        let root = s.define("IRSObject", None).unwrap();
        let para = s.define("PARA", Some(root)).unwrap();
        assert_eq!(s.class_id("PARA").unwrap(), para);
        assert_eq!(s.name(para), "PARA");
        assert!(matches!(s.class_id("NOPE"), Err(DbError::UnknownClass(_))));
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut s = Schema::new();
        s.define("A", None).unwrap();
        assert!(matches!(
            s.define("A", None),
            Err(DbError::DuplicateClass(_))
        ));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut s = Schema::new();
        assert!(s.define("A", Some(ClassId(5))).is_err());
    }

    #[test]
    fn subclass_transitivity() {
        let mut s = Schema::new();
        let a = s.define("A", None).unwrap();
        let b = s.define("B", Some(a)).unwrap();
        let c = s.define("C", Some(b)).unwrap();
        let x = s.define("X", None).unwrap();
        assert!(s.is_subclass(c, a));
        assert!(s.is_subclass(b, a));
        assert!(s.is_subclass(a, a));
        assert!(!s.is_subclass(a, b));
        assert!(!s.is_subclass(x, a));
        assert_eq!(s.subclasses(a), vec![a, b, c]);
        assert_eq!(s.subclasses(x), vec![x]);
    }

    #[test]
    fn iter_in_id_order() {
        let mut s = Schema::new();
        s.define("B", None).unwrap();
        s.define("A", None).unwrap();
        let names: Vec<&str> = s.iter().map(|(_, d)| d.name.as_str()).collect();
        assert_eq!(names, vec!["B", "A"]);
    }
}
