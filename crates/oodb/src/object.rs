//! Database objects: identity, class membership, attributes.

use std::collections::BTreeMap;

use crate::oid::Oid;
use crate::schema::ClassId;
use crate::value::Value;

/// A stored object. Attributes are a sorted map so serialisation and
/// iteration are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Object identity.
    pub oid: Oid,
    /// The class the object is a direct instance of.
    pub class: ClassId,
    /// Attribute values.
    pub attrs: BTreeMap<String, Value>,
}

impl Object {
    /// Create an object with no attributes.
    pub fn new(oid: Oid, class: ClassId) -> Self {
        Object {
            oid,
            class,
            attrs: BTreeMap::new(),
        }
    }

    /// Attribute value, or [`Value::Null`] when absent (the query language
    /// treats missing attributes as NULL).
    pub fn attr(&self, name: &str) -> Value {
        self.attrs.get(name).cloned().unwrap_or(Value::Null)
    }

    /// Borrowing variant of [`Object::attr`].
    pub fn attr_ref(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// Set (or clear with `Value::Null`) an attribute, returning the
    /// previous value.
    pub fn set_attr(&mut self, name: &str, value: Value) -> Value {
        if matches!(value, Value::Null) {
            self.attrs.remove(name).unwrap_or(Value::Null)
        } else {
            self.attrs
                .insert(name.to_string(), value)
                .unwrap_or(Value::Null)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_attr_is_null() {
        let o = Object::new(Oid(1), ClassId(0));
        assert_eq!(o.attr("x"), Value::Null);
        assert_eq!(o.attr_ref("x"), None);
    }

    #[test]
    fn set_attr_returns_previous() {
        let mut o = Object::new(Oid(1), ClassId(0));
        assert_eq!(o.set_attr("x", Value::Int(1)), Value::Null);
        assert_eq!(o.set_attr("x", Value::Int(2)), Value::Int(1));
        assert_eq!(o.attr("x"), Value::Int(2));
    }

    #[test]
    fn setting_null_clears() {
        let mut o = Object::new(Oid(1), ClassId(0));
        o.set_attr("x", Value::Int(1));
        assert_eq!(o.set_attr("x", Value::Null), Value::Int(1));
        assert_eq!(o.attr_ref("x"), None);
    }
}
