//! Attribute values.
//!
//! The value system is deliberately small: nulls, booleans, integers,
//! reals, strings, OID references and lists (complex objects reference
//! subobjects by OID, as in the paper's fragmented SGML representation
//! where each element is its own object).

use std::cmp::Ordering;
use std::fmt;

use crate::oid::Oid;
use crate::util::{read_str, read_varint, write_str, write_varint};

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 string.
    Str(String),
    /// Reference to another object.
    Oid(Oid),
    /// Ordered list of values (e.g. the children of a document element).
    List(Vec<Value>),
}

impl Value {
    /// Rank used to order values of different types (total order for
    /// B-tree keys): Null < Bool < Int/Real < Str < Oid < List. Ints and
    /// reals share a rank and compare numerically.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Real(_) => 2,
            Value::Str(_) => 3,
            Value::Oid(_) => 4,
            Value::List(_) => 5,
        }
    }

    /// Total order over all values (used by indexes and ORDER-like
    /// processing). `f64` comparisons use IEEE total ordering.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Real(b)) => (*a as f64).total_cmp(b),
            (Value::Real(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Oid(a), Value::Oid(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => unreachable!("ranks matched above"),
        }
    }

    /// Loose equality used by query `=` / `==`: numeric types compare by
    /// value, everything else structurally.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Real(b)) => (*a as f64) == *b,
            (Value::Real(a), Value::Int(b)) => *a == (*b as f64),
            _ => self == other,
        }
    }

    /// Truthiness for WHERE results: false for Null, Bool(false), 0, 0.0,
    /// empty string/list; true otherwise.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Real(r) => *r != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Oid(_) => true,
            Value::List(l) => !l.is_empty(),
        }
    }

    /// Numeric view (Int/Real) for arithmetic comparisons.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// OID view.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Value::Oid(o) => Some(*o),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Serialise into `buf` (tag byte + payload).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Null => buf.push(0),
            Value::Bool(b) => {
                buf.push(1);
                buf.push(*b as u8);
            }
            Value::Int(i) => {
                buf.push(2);
                // Zig-zag so negative values stay compact.
                write_varint(buf, ((i << 1) ^ (i >> 63)) as u64);
            }
            Value::Real(r) => {
                buf.push(3);
                buf.extend_from_slice(&r.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                buf.push(4);
                write_str(buf, s);
            }
            Value::Oid(o) => {
                buf.push(5);
                write_varint(buf, o.0);
            }
            Value::List(l) => {
                buf.push(6);
                write_varint(buf, l.len() as u64);
                for v in l {
                    v.encode(buf);
                }
            }
        }
    }

    /// Inverse of [`Value::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<Value> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            0 => Value::Null,
            1 => {
                let b = *buf.get(*pos)?;
                *pos += 1;
                Value::Bool(b != 0)
            }
            2 => {
                let z = read_varint(buf, pos)?;
                Value::Int(((z >> 1) as i64) ^ -((z & 1) as i64))
            }
            3 => {
                if *pos + 8 > buf.len() {
                    return None;
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[*pos..*pos + 8]);
                *pos += 8;
                Value::Real(f64::from_bits(u64::from_le_bytes(b)))
            }
            4 => Value::Str(read_str(buf, pos)?),
            5 => Value::Oid(Oid(read_varint(buf, pos)?)),
            6 => {
                let n = read_varint(buf, pos)? as usize;
                let mut l = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    l.push(Value::decode(buf, pos)?);
                }
                Value::List(l)
            }
            _ => return None,
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Oid(o) => write!(f, "{o}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Oid> for Value {
    fn from(o: Oid) -> Self {
        Value::Oid(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_ranks_types() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(1),
            Value::Str("a".into()),
            Value::Oid(Oid(1)),
            Value::List(vec![]),
        ];
        for w in vals.windows(2) {
            assert_eq!(w[0].total_cmp(&w[1]), Ordering::Less);
        }
    }

    #[test]
    fn int_real_compare_numerically() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Real(2.5)), Ordering::Less);
        assert_eq!(Value::Real(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert!(Value::Int(2).loose_eq(&Value::Real(2.0)));
        assert!(!Value::Int(2).loose_eq(&Value::Real(2.1)));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(Value::Oid(Oid(0)).truthy());
        assert!(!Value::List(vec![]).truthy());
    }

    #[test]
    fn encode_decode_round_trip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-12345),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Real(3.25),
            Value::Str("héllo".into()),
            Value::Oid(Oid(99)),
            Value::List(vec![
                Value::Int(1),
                Value::List(vec![Value::Str("x".into())]),
            ]),
        ];
        for v in &vals {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut pos = 0;
            let back = Value::decode(&buf, &mut pos).unwrap();
            assert_eq!(&back, v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Value::decode(&[200], &mut 0), None);
        assert_eq!(Value::decode(&[], &mut 0), None);
        // Truncated f64.
        assert_eq!(Value::decode(&[3, 0, 0], &mut 0), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Str("a".into()).to_string(), "'a'");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Null]).to_string(),
            "[1, NULL]"
        );
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::List(vec![Value::Int(1)]);
        let b = Value::List(vec![Value::Int(1), Value::Int(0)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn value_strategy() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Real),
            "[a-zA-Z0-9 ]{0,16}".prop_map(Value::Str),
            any::<u64>().prop_map(|o| Value::Oid(Oid(o))),
        ];
        leaf.prop_recursive(3, 24, 6, |inner| {
            prop::collection::vec(inner, 0..6).prop_map(Value::List)
        })
    }

    proptest! {
        #[test]
        fn encode_decode_round_trips(v in value_strategy()) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut pos = 0;
            let back = Value::decode(&buf, &mut pos).unwrap();
            // NaN != NaN under PartialEq, so compare via total order.
            prop_assert_eq!(back.total_cmp(&v), std::cmp::Ordering::Equal);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn total_cmp_is_antisymmetric(a in value_strategy(), b in value_strategy()) {
            let ab = a.total_cmp(&b);
            let ba = b.total_cmp(&a);
            prop_assert_eq!(ab, ba.reverse());
        }

        #[test]
        fn total_cmp_is_transitive(
            mut vs in prop::collection::vec(value_strategy(), 3)
        ) {
            vs.sort_by(|x, y| x.total_cmp(y));
            prop_assert!(vs[0].total_cmp(&vs[2]) != std::cmp::Ordering::Greater);
        }
    }
}
