//! Full-state snapshots (checkpoints).
//!
//! A snapshot captures schema, index definitions, every object and the
//! OID allocator. After writing one, the WAL can be truncated; recovery
//! is snapshot + WAL-tail replay.

use std::path::Path;

use crate::error::{DbError, Result};
use crate::object::Object;
use crate::oid::Oid;
use crate::schema::{ClassId, Schema};
use crate::store::ObjectStore;
use crate::util::{atomic_write, read_str, read_varint, read_verified, write_str, write_varint};
use crate::value::Value;

const MAGIC: &[u8; 4] = b"ODBS";
const VERSION: u8 = 1;

/// Index definition carried through a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Indexed class.
    pub class: ClassId,
    /// Indexed attribute.
    pub attr: String,
    /// 0 = B+tree, 1 = hash.
    pub kind: u8,
}

/// Everything a snapshot holds.
#[derive(Debug)]
pub struct Snapshot {
    /// The class schema.
    pub schema: Schema,
    /// Index definitions (entries are rebuilt from objects at load).
    pub indexes: Vec<IndexDef>,
    /// The object store.
    pub store: ObjectStore,
}

/// Write a snapshot of `schema` + `store` + `indexes` to `path`.
pub fn write(
    path: &Path,
    schema: &Schema,
    indexes: &[IndexDef],
    store: &ObjectStore,
) -> Result<()> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);

    // Schema in class-id order; parents reference earlier ids.
    write_varint(&mut out, schema.len() as u64);
    for (_, def) in schema.iter() {
        write_str(&mut out, &def.name);
        match def.parent {
            Some(p) => {
                out.push(1);
                write_varint(&mut out, u64::from(p.0));
            }
            None => out.push(0),
        }
    }

    // Index definitions.
    write_varint(&mut out, indexes.len() as u64);
    for ix in indexes {
        write_varint(&mut out, u64::from(ix.class.0));
        write_str(&mut out, &ix.attr);
        out.push(ix.kind);
    }

    // OID allocator.
    write_varint(&mut out, store.next_oid());

    // Objects in OID order.
    write_varint(&mut out, store.len() as u64);
    for obj in store.iter_ordered() {
        write_varint(&mut out, obj.oid.0);
        write_varint(&mut out, u64::from(obj.class.0));
        write_varint(&mut out, obj.attrs.len() as u64);
        for (name, value) in &obj.attrs {
            write_str(&mut out, name);
            value.encode(&mut out);
        }
    }

    // Crash-safe: temp file + fsync + atomic rename, CRC-32 trailer.
    atomic_write(path, &out)
}

/// Load a snapshot previously written by [`write`].
pub fn read(path: &Path) -> Result<Snapshot> {
    let buf = read_verified(path)?;
    let mut pos = 0usize;

    if buf.len() < 5 || &buf[0..4] != MAGIC {
        return Err(DbError::Corrupt("snapshot: bad magic".into()));
    }
    pos += 4;
    if buf[pos] != VERSION {
        return Err(DbError::Corrupt(format!("snapshot: version {}", buf[pos])));
    }
    pos += 1;

    let corrupt = |what: &str| DbError::Corrupt(format!("snapshot: truncated {what}"));

    let class_count = read_varint(&buf, &mut pos).ok_or_else(|| corrupt("class count"))? as usize;
    let mut schema = Schema::new();
    for _ in 0..class_count {
        let name = read_str(&buf, &mut pos).ok_or_else(|| corrupt("class name"))?;
        let has_parent = *buf.get(pos).ok_or_else(|| corrupt("parent flag"))?;
        pos += 1;
        let parent = match has_parent {
            0 => None,
            1 => Some(ClassId(
                read_varint(&buf, &mut pos).ok_or_else(|| corrupt("parent id"))? as u32,
            )),
            _ => return Err(DbError::Corrupt("snapshot: bad parent flag".into())),
        };
        schema.define(&name, parent)?;
    }

    let index_count = read_varint(&buf, &mut pos).ok_or_else(|| corrupt("index count"))? as usize;
    let mut indexes = Vec::with_capacity(index_count);
    for _ in 0..index_count {
        let class =
            ClassId(read_varint(&buf, &mut pos).ok_or_else(|| corrupt("index class"))? as u32);
        let attr = read_str(&buf, &mut pos).ok_or_else(|| corrupt("index attr"))?;
        let kind = *buf.get(pos).ok_or_else(|| corrupt("index kind"))?;
        pos += 1;
        indexes.push(IndexDef { class, attr, kind });
    }

    let next_oid = read_varint(&buf, &mut pos).ok_or_else(|| corrupt("next oid"))?;
    let mut store = ObjectStore::new();
    store.bump_oid_floor(next_oid);

    let obj_count = read_varint(&buf, &mut pos).ok_or_else(|| corrupt("object count"))? as usize;
    for _ in 0..obj_count {
        let oid = Oid(read_varint(&buf, &mut pos).ok_or_else(|| corrupt("oid"))?);
        let class = ClassId(read_varint(&buf, &mut pos).ok_or_else(|| corrupt("class id"))? as u32);
        let attr_count = read_varint(&buf, &mut pos).ok_or_else(|| corrupt("attr count"))? as usize;
        let mut obj = Object::new(oid, class);
        for _ in 0..attr_count {
            let name = read_str(&buf, &mut pos).ok_or_else(|| corrupt("attr name"))?;
            let value = Value::decode(&buf, &mut pos).ok_or_else(|| corrupt("attr value"))?;
            obj.attrs.insert(name, value);
        }
        store.put(obj);
    }

    if pos != buf.len() {
        return Err(DbError::Corrupt("snapshot: trailing bytes".into()));
    }
    Ok(Snapshot {
        schema,
        indexes,
        store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("oodb-snapshot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> (Schema, Vec<IndexDef>, ObjectStore) {
        let mut schema = Schema::new();
        let root = schema.define("IRSObject", None).unwrap();
        let para = schema.define("PARA", Some(root)).unwrap();
        let mut store = ObjectStore::new();
        let o1 = store.allocate_oid();
        let mut obj = Object::new(o1, para);
        obj.set_attr("content", Value::from("Telnet is a protocol"));
        obj.set_attr("year", Value::Int(1994));
        obj.set_attr(
            "children",
            Value::List(vec![Value::Oid(Oid(99)), Value::Null]),
        );
        store.put(obj);
        let indexes = vec![IndexDef {
            class: para,
            attr: "year".into(),
            kind: 0,
        }];
        (schema, indexes, store)
    }

    #[test]
    fn round_trip() {
        let (schema, indexes, store) = sample();
        let path = tmp("round_trip.snap");
        write(&path, &schema, &indexes, &store).unwrap();
        let snap = read(&path).unwrap();
        assert_eq!(snap.schema.len(), 2);
        assert_eq!(snap.schema.class_id("PARA").unwrap(), ClassId(1));
        assert_eq!(snap.indexes, indexes);
        assert_eq!(snap.store.len(), 1);
        let obj = snap.store.get(Oid(1)).unwrap();
        assert_eq!(obj.attr("year"), Value::Int(1994));
        assert_eq!(obj.attr("content"), Value::from("Telnet is a protocol"));
        // Allocator continues past recovered objects.
        assert!(snap.store.next_oid() > 1);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let path = tmp("badmagic.snap");
        std::fs::write(&path, b"XXXX\x01").unwrap();
        assert!(matches!(read(&path), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn truncation_rejected() {
        let (schema, indexes, store) = sample();
        let path = tmp("trunc.snap");
        write(&path, &schema, &indexes, &store).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read(&path).is_err());
    }

    #[test]
    fn bit_flip_in_place_rejected() {
        let (schema, indexes, store) = sample();
        let path = tmp("bitflip.snap");
        write(&path, &schema, &indexes, &store).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read(&path), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn empty_database_snapshot() {
        let path = tmp("empty.snap");
        write(&path, &Schema::new(), &[], &ObjectStore::new()).unwrap();
        let snap = read(&path).unwrap();
        assert!(snap.schema.is_empty());
        assert!(snap.store.is_empty());
        assert!(snap.indexes.is_empty());
    }
}
