//! The in-memory object store: objects, class extents, OID allocation.
//!
//! Durability lives one layer up ([`wal`], [`snapshot`]); the store itself
//! is a plain, fast structure the [`crate::Database`] mutates under
//! transaction control.

pub mod snapshot;
pub mod wal;

use std::collections::{BTreeSet, HashMap};

use crate::error::{DbError, Result};
use crate::object::Object;
use crate::oid::Oid;
use crate::schema::ClassId;
use crate::value::Value;

/// Objects plus per-class extents.
#[derive(Debug, Default, Clone)]
pub struct ObjectStore {
    objects: HashMap<Oid, Object>,
    extents: HashMap<ClassId, BTreeSet<Oid>>,
    next_oid: u64,
}

impl ObjectStore {
    /// Create an empty store. OIDs start at 1 (0 is reserved as a
    /// sentinel in index range scans).
    pub fn new() -> Self {
        ObjectStore {
            objects: HashMap::new(),
            extents: HashMap::new(),
            next_oid: 1,
        }
    }

    /// Allocate a fresh OID. Never reused.
    pub fn allocate_oid(&mut self) -> Oid {
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        oid
    }

    /// Advance the allocator to at least `floor` (used by WAL replay so
    /// recovered OIDs are not re-allocated).
    pub fn bump_oid_floor(&mut self, floor: u64) {
        self.next_oid = self.next_oid.max(floor);
    }

    /// Next OID that would be allocated.
    pub fn next_oid(&self) -> u64 {
        self.next_oid
    }

    /// Insert a fully-formed object (used by create, replay and undo).
    pub fn put(&mut self, obj: Object) {
        self.extents.entry(obj.class).or_default().insert(obj.oid);
        self.objects.insert(obj.oid, obj);
    }

    /// Remove an object, returning it.
    pub fn take(&mut self, oid: Oid) -> Result<Object> {
        let obj = self
            .objects
            .remove(&oid)
            .ok_or(DbError::UnknownObject(oid))?;
        if let Some(ext) = self.extents.get_mut(&obj.class) {
            ext.remove(&oid);
        }
        Ok(obj)
    }

    /// Borrow an object.
    pub fn get(&self, oid: Oid) -> Result<&Object> {
        self.objects.get(&oid).ok_or(DbError::UnknownObject(oid))
    }

    /// Mutably borrow an object.
    pub fn get_mut(&mut self, oid: Oid) -> Result<&mut Object> {
        self.objects
            .get_mut(&oid)
            .ok_or(DbError::UnknownObject(oid))
    }

    /// True if `oid` is live.
    pub fn contains(&self, oid: Oid) -> bool {
        self.objects.contains_key(&oid)
    }

    /// The direct extent of `class` (no subclasses), in OID order.
    pub fn extent(&self, class: ClassId) -> impl Iterator<Item = Oid> + '_ {
        self.extents
            .get(&class)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Size of the direct extent.
    pub fn extent_size(&self, class: ClassId) -> usize {
        self.extents.get(&class).map_or(0, BTreeSet::len)
    }

    /// Total number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterate over all objects in OID order (deterministic for
    /// snapshots).
    pub fn iter_ordered(&self) -> impl Iterator<Item = &Object> {
        let mut oids: Vec<Oid> = self.objects.keys().copied().collect();
        oids.sort();
        oids.into_iter().map(move |oid| &self.objects[&oid])
    }

    /// Convenience: attribute of an object (`Null` when absent).
    pub fn attr(&self, oid: Oid, name: &str) -> Result<Value> {
        Ok(self.get(oid)?.attr(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oids_are_never_reused() {
        let mut s = ObjectStore::new();
        let a = s.allocate_oid();
        let b = s.allocate_oid();
        assert_ne!(a, b);
        s.put(Object::new(a, ClassId(0)));
        s.take(a).unwrap();
        let c = s.allocate_oid();
        assert!(c > b);
    }

    #[test]
    fn extents_track_membership() {
        let mut s = ObjectStore::new();
        let a = s.allocate_oid();
        let b = s.allocate_oid();
        s.put(Object::new(a, ClassId(0)));
        s.put(Object::new(b, ClassId(1)));
        assert_eq!(s.extent(ClassId(0)).collect::<Vec<_>>(), vec![a]);
        assert_eq!(s.extent_size(ClassId(1)), 1);
        s.take(a).unwrap();
        assert_eq!(s.extent_size(ClassId(0)), 0);
    }

    #[test]
    fn unknown_object_errors() {
        let mut s = ObjectStore::new();
        assert!(matches!(s.get(Oid(9)), Err(DbError::UnknownObject(_))));
        assert!(s.take(Oid(9)).is_err());
        assert!(s.attr(Oid(9), "x").is_err());
    }

    #[test]
    fn bump_floor_prevents_replay_collisions() {
        let mut s = ObjectStore::new();
        s.bump_oid_floor(100);
        assert_eq!(s.allocate_oid(), Oid(100));
        s.bump_oid_floor(50); // never moves backwards
        assert_eq!(s.allocate_oid(), Oid(101));
    }

    #[test]
    fn iter_ordered_is_sorted() {
        let mut s = ObjectStore::new();
        for _ in 0..10 {
            let oid = s.allocate_oid();
            s.put(Object::new(oid, ClassId(0)));
        }
        let oids: Vec<Oid> = s.iter_ordered().map(|o| o.oid).collect();
        let mut sorted = oids.clone();
        sorted.sort();
        assert_eq!(oids, sorted);
    }
}
