//! Write-ahead log.
//!
//! Redo-only logging: a transaction's records are buffered in memory and
//! appended as one batch terminated by a commit marker. Recovery replays
//! complete batches and discards a trailing partial batch (torn write).
//! DDL (class and index definitions) is logged the same way as its own
//! single-record batch.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::error::{DbError, Result};
use crate::oid::Oid;
use crate::util::{read_str, read_varint, write_str, write_varint};
use crate::value::Value;

/// One redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A class definition (`parent` by name, resolved at replay).
    DefineClass {
        /// Class name.
        name: String,
        /// Optional superclass name.
        parent: Option<String>,
    },
    /// An index creation; `kind` is 0 = B+tree, 1 = hash.
    CreateIndex {
        /// Indexed class name.
        class: String,
        /// Indexed attribute.
        attr: String,
        /// 0 = B+tree, 1 = hash.
        kind: u8,
    },
    /// Object creation.
    Create {
        /// The created object's OID.
        oid: Oid,
        /// Its class name.
        class: String,
    },
    /// Attribute assignment (including `Null` = clear).
    SetAttr {
        /// Target object.
        oid: Oid,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
    },
    /// Object deletion.
    Delete {
        /// The deleted object's OID.
        oid: Oid,
    },
    /// Terminates a batch; everything since the previous marker is atomic.
    Commit,
}

impl Record {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Record::DefineClass { name, parent } => {
                out.push(1);
                write_str(out, name);
                match parent {
                    Some(p) => {
                        out.push(1);
                        write_str(out, p);
                    }
                    None => out.push(0),
                }
            }
            Record::CreateIndex { class, attr, kind } => {
                out.push(2);
                write_str(out, class);
                write_str(out, attr);
                out.push(*kind);
            }
            Record::Create { oid, class } => {
                out.push(3);
                write_varint(out, oid.0);
                write_str(out, class);
            }
            Record::SetAttr { oid, attr, value } => {
                out.push(4);
                write_varint(out, oid.0);
                write_str(out, attr);
                value.encode(out);
            }
            Record::Delete { oid } => {
                out.push(5);
                write_varint(out, oid.0);
            }
            Record::Commit => out.push(6),
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Record> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            1 => {
                let name = read_str(buf, pos)?;
                let has_parent = *buf.get(*pos)?;
                *pos += 1;
                let parent = match has_parent {
                    0 => None,
                    1 => Some(read_str(buf, pos)?),
                    _ => return None,
                };
                Record::DefineClass { name, parent }
            }
            2 => {
                let class = read_str(buf, pos)?;
                let attr = read_str(buf, pos)?;
                let kind = *buf.get(*pos)?;
                *pos += 1;
                Record::CreateIndex { class, attr, kind }
            }
            3 => Record::Create {
                oid: Oid(read_varint(buf, pos)?),
                class: read_str(buf, pos)?,
            },
            4 => Record::SetAttr {
                oid: Oid(read_varint(buf, pos)?),
                attr: read_str(buf, pos)?,
                value: Value::decode(buf, pos)?,
            },
            5 => Record::Delete {
                oid: Oid(read_varint(buf, pos)?),
            },
            6 => Record::Commit,
            _ => return None,
        })
    }
}

/// Appender for the WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
}

impl WalWriter {
    /// Open (creating or appending to) the WAL at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            file: BufWriter::new(file),
        })
    }

    /// Append `records` followed by a commit marker, then flush. The batch
    /// is atomic with respect to recovery.
    pub fn append_batch(&mut self, records: &[Record]) -> Result<()> {
        let mut payload = Vec::new();
        for r in records {
            r.encode(&mut payload);
        }
        Record::Commit.encode(&mut payload);
        // Frame: length prefix lets recovery detect torn tails cheaply.
        let mut framed = Vec::with_capacity(payload.len() + 10);
        write_varint(&mut framed, payload.len() as u64);
        framed.extend_from_slice(&payload);
        self.file.write_all(&framed)?;
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }
}

/// Read every complete batch from the WAL at `path`. A truncated trailing
/// frame (crash mid-write) is silently discarded; corruption *within* a
/// complete frame is an error.
pub fn replay(path: &Path) -> Result<Vec<Record>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let frame_start = pos;
        let Some(len) = read_varint(&buf, &mut pos) else {
            break; // torn length prefix
        };
        let len = len as usize;
        if pos + len > buf.len() {
            let _ = frame_start;
            break; // torn payload
        }
        let frame = &buf[pos..pos + len];
        pos += len;
        let mut fpos = 0usize;
        let mut batch = Vec::new();
        let mut committed = false;
        while fpos < frame.len() {
            match Record::decode(frame, &mut fpos) {
                Some(Record::Commit) => {
                    committed = true;
                    break;
                }
                Some(r) => batch.push(r),
                None => {
                    return Err(DbError::Corrupt(format!(
                        "undecodable record at wal byte {}",
                        frame_start
                    )))
                }
            }
        }
        if !committed {
            return Err(DbError::Corrupt(format!(
                "frame at wal byte {frame_start} lacks commit marker"
            )));
        }
        records.extend(batch);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("oodb-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_batch() -> Vec<Record> {
        vec![
            Record::DefineClass {
                name: "PARA".into(),
                parent: Some("IRSObject".into()),
            },
            Record::Create {
                oid: Oid(7),
                class: "PARA".into(),
            },
            Record::SetAttr {
                oid: Oid(7),
                attr: "content".into(),
                value: Value::from("Telnet is a protocol"),
            },
            Record::Delete { oid: Oid(3) },
            Record::CreateIndex {
                class: "PARA".into(),
                attr: "year".into(),
                kind: 0,
            },
        ]
    }

    #[test]
    fn batches_round_trip() {
        let path = tmp("round_trip.wal");
        let batch = sample_batch();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append_batch(&batch).unwrap();
            w.append_batch(&[Record::Delete { oid: Oid(7) }]).unwrap();
        }
        let records = replay(&path).unwrap();
        let mut expect = batch;
        expect.push(Record::Delete { oid: Oid(7) });
        assert_eq!(records, expect);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmp("torn.wal");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append_batch(&sample_batch()).unwrap();
            w.append_batch(&[Record::Delete { oid: Oid(9) }]).unwrap();
        }
        // Chop off the last few bytes to simulate a crash mid-write.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), sample_batch().len(), "partial batch dropped");
    }

    #[test]
    fn frame_without_commit_marker_is_corrupt() {
        let path = tmp("nocommit.wal");
        // Hand-craft a frame holding one record but no marker.
        let mut payload = Vec::new();
        Record::Delete { oid: Oid(1) }.encode(&mut payload);
        let mut framed = Vec::new();
        write_varint(&mut framed, payload.len() as u64);
        framed.extend_from_slice(&payload);
        std::fs::write(&path, &framed).unwrap();
        assert!(matches!(replay(&path), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn garbage_within_frame_is_corrupt() {
        let path = tmp("garbage.wal");
        let payload = vec![99u8, 1, 2, 3];
        let mut framed = Vec::new();
        write_varint(&mut framed, payload.len() as u64);
        framed.extend_from_slice(&payload);
        std::fs::write(&path, &framed).unwrap();
        assert!(matches!(replay(&path), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn empty_wal_is_fine() {
        let path = tmp("empty.wal");
        std::fs::write(&path, b"").unwrap();
        assert!(replay(&path).unwrap().is_empty());
    }
}
