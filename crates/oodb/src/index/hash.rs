//! Hash index: equality-only access path.
//!
//! Keys are the binary encoding of the attribute [`Value`] (values such as
//! `f64` have no `Hash` impl; the encoded form is canonical and hashable).

use std::collections::HashMap;

use crate::oid::Oid;
use crate::value::Value;

/// Equality index from attribute value to the set of OIDs holding it.
#[derive(Debug, Default, Clone)]
pub struct HashIndex {
    map: HashMap<Vec<u8>, Vec<Oid>>,
    len: usize,
}

fn encode(value: &Value) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

impl HashIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `(value, oid)` entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add an entry. Duplicate `(value, oid)` pairs are ignored.
    pub fn insert(&mut self, value: &Value, oid: Oid) {
        let bucket = self.map.entry(encode(value)).or_default();
        if let Err(i) = bucket.binary_search(&oid) {
            bucket.insert(i, oid);
            self.len += 1;
        }
    }

    /// Remove an entry. Returns true if it existed.
    pub fn remove(&mut self, value: &Value, oid: Oid) -> bool {
        let key = encode(value);
        if let Some(bucket) = self.map.get_mut(&key) {
            if let Ok(i) = bucket.binary_search(&oid) {
                bucket.remove(i);
                self.len -= 1;
                if bucket.is_empty() {
                    self.map.remove(&key);
                }
                return true;
            }
        }
        false
    }

    /// OIDs whose indexed attribute equals `value`, in OID order.
    pub fn lookup(&self, value: &Value) -> &[Oid] {
        self.map
            .get(&encode(value))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut ix = HashIndex::new();
        ix.insert(&Value::from("1994"), Oid(1));
        ix.insert(&Value::from("1994"), Oid(2));
        ix.insert(&Value::from("1995"), Oid(3));
        assert_eq!(ix.lookup(&Value::from("1994")), &[Oid(1), Oid(2)]);
        assert_eq!(ix.lookup(&Value::from("1996")), &[] as &[Oid]);
        assert!(ix.remove(&Value::from("1994"), Oid(1)));
        assert!(!ix.remove(&Value::from("1994"), Oid(1)));
        assert_eq!(ix.lookup(&Value::from("1994")), &[Oid(2)]);
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut ix = HashIndex::new();
        ix.insert(&Value::Int(5), Oid(1));
        ix.insert(&Value::Int(5), Oid(1));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn distinct_types_do_not_collide() {
        let mut ix = HashIndex::new();
        ix.insert(&Value::Int(1), Oid(1));
        ix.insert(&Value::Str("1".into()), Oid(2));
        assert_eq!(ix.lookup(&Value::Int(1)), &[Oid(1)]);
        assert_eq!(ix.lookup(&Value::Str("1".into())), &[Oid(2)]);
    }

    #[test]
    fn empty_bucket_is_pruned() {
        let mut ix = HashIndex::new();
        ix.insert(&Value::Int(1), Oid(1));
        ix.remove(&Value::Int(1), Oid(1));
        assert!(ix.is_empty());
        assert_eq!(ix.lookup(&Value::Int(1)), &[] as &[Oid]);
    }
}
