//! Secondary indexes over object attributes.
//!
//! Two access structures — a [`BPlusTree`] for ordered/range predicates
//! and a [`HashIndex`] for pure equality — plus the [`IndexManager`] that
//! keeps per-(class, attribute) indexes in sync with object mutations and
//! answers the optimizer's access-path questions.

mod btree;
mod hash;

pub use btree::BPlusTree;
pub use hash::HashIndex;

use std::collections::HashMap;

use crate::oid::Oid;
use crate::schema::ClassId;
use crate::value::Value;

/// Which structure backs an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Ordered B+tree — supports equality and range lookups.
    BTree,
    /// Hash — equality only, cheaper maintenance.
    Hash,
}

/// B+tree key: attribute value plus OID for uniqueness. Ordering uses the
/// value's total order, then the OID.
#[derive(Debug, Clone, PartialEq)]
struct TreeKey(Value, Oid);

impl Eq for TreeKey {}

impl PartialOrd for TreeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TreeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

#[derive(Debug, Clone)]
enum Backing {
    Tree(BPlusTree<TreeKey, ()>),
    Hash(HashIndex),
}

/// All secondary indexes of a database.
#[derive(Debug, Default, Clone)]
pub struct IndexManager {
    indexes: HashMap<(ClassId, String), Backing>,
}

impl IndexManager {
    /// Create an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an index on `(class, attr)`. Replaces any existing index on
    /// the same pair. The caller backfills via [`IndexManager::on_set`].
    pub fn create(&mut self, class: ClassId, attr: &str, kind: IndexKind) {
        let backing = match kind {
            IndexKind::BTree => Backing::Tree(BPlusTree::new()),
            IndexKind::Hash => Backing::Hash(HashIndex::new()),
        };
        self.indexes.insert((class, attr.to_string()), backing);
    }

    /// True if `(class, attr)` has an index.
    pub fn has_index(&self, class: ClassId, attr: &str) -> bool {
        self.indexes.contains_key(&(class, attr.to_string()))
    }

    /// True if `(class, attr)` has an *ordered* index (supports ranges).
    pub fn has_ordered_index(&self, class: ClassId, attr: &str) -> bool {
        matches!(
            self.indexes.get(&(class, attr.to_string())),
            Some(Backing::Tree(_))
        )
    }

    /// Maintain indexes after an attribute change on `oid` of `class`.
    /// `old`/`new` of `Value::Null` mean absent.
    pub fn on_set(&mut self, class: ClassId, attr: &str, oid: Oid, old: &Value, new: &Value) {
        let Some(backing) = self.indexes.get_mut(&(class, attr.to_string())) else {
            return;
        };
        match backing {
            Backing::Tree(t) => {
                if !matches!(old, Value::Null) {
                    t.remove(&TreeKey(old.clone(), oid));
                }
                if !matches!(new, Value::Null) {
                    t.insert(TreeKey(new.clone(), oid), ());
                }
            }
            Backing::Hash(h) => {
                if !matches!(old, Value::Null) {
                    h.remove(old, oid);
                }
                if !matches!(new, Value::Null) {
                    h.insert(new, oid);
                }
            }
        }
    }

    /// Equality lookup: OIDs in `class` whose `attr` equals `value`.
    /// `None` when no index exists.
    pub fn lookup_eq(&self, class: ClassId, attr: &str, value: &Value) -> Option<Vec<Oid>> {
        match self.indexes.get(&(class, attr.to_string()))? {
            Backing::Hash(h) => Some(h.lookup(value).to_vec()),
            Backing::Tree(t) => {
                let lo = TreeKey(value.clone(), Oid(0));
                let hi = TreeKey(value.clone(), Oid(u64::MAX));
                Some(t.range(&lo, &hi).map(|(k, _)| k.1).collect())
            }
        }
    }

    /// Range lookup over an ordered index: `lo <= attr <= hi`.
    /// `None` when no ordered index exists.
    pub fn lookup_range(
        &self,
        class: ClassId,
        attr: &str,
        lo: &Value,
        hi: &Value,
    ) -> Option<Vec<Oid>> {
        match self.indexes.get(&(class, attr.to_string()))? {
            Backing::Tree(t) => {
                let lo = TreeKey(lo.clone(), Oid(0));
                let hi = TreeKey(hi.clone(), Oid(u64::MAX));
                Some(t.range(&lo, &hi).map(|(k, _)| k.1).collect())
            }
            Backing::Hash(_) => None,
        }
    }

    /// Range lookup with optional bounds (both inclusive when present).
    /// `None` when no ordered index exists on `(class, attr)`.
    pub fn lookup_range_opt(
        &self,
        class: ClassId,
        attr: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<Vec<Oid>> {
        let Backing::Tree(t) = self.indexes.get(&(class, attr.to_string()))? else {
            return None;
        };
        // `Value::Null` has the lowest type rank and is never indexed, so
        // it serves as the -infinity sentinel.
        let lo_key = TreeKey(lo.cloned().unwrap_or(Value::Null), Oid(0));
        Some(match hi {
            Some(h) => {
                let hi_key = TreeKey(h.clone(), Oid(u64::MAX));
                t.range(&lo_key, &hi_key).map(|(k, _)| k.1).collect()
            }
            None => t.range_from(&lo_key).map(|(k, _)| k.1).collect(),
        })
    }

    /// Rebuild lazy-deleted trees (called from snapshot checkpoints).
    pub fn compact(&mut self) {
        for backing in self.indexes.values_mut() {
            if let Backing::Tree(t) = backing {
                t.rebuild();
            }
        }
    }

    /// Names of indexed `(class, attr)` pairs, for introspection.
    pub fn list(&self) -> Vec<(ClassId, String)> {
        let mut out: Vec<(ClassId, String)> = self.indexes.keys().cloned().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLASS: ClassId = ClassId(0);

    #[test]
    fn tree_index_equality_and_range() {
        let mut m = IndexManager::new();
        m.create(CLASS, "year", IndexKind::BTree);
        for (i, y) in [1993i64, 1994, 1994, 1995].iter().enumerate() {
            m.on_set(CLASS, "year", Oid(i as u64), &Value::Null, &Value::Int(*y));
        }
        assert_eq!(
            m.lookup_eq(CLASS, "year", &Value::Int(1994)).unwrap(),
            vec![Oid(1), Oid(2)]
        );
        assert_eq!(
            m.lookup_range(CLASS, "year", &Value::Int(1994), &Value::Int(1995))
                .unwrap(),
            vec![Oid(1), Oid(2), Oid(3)]
        );
    }

    #[test]
    fn hash_index_equality_only() {
        let mut m = IndexManager::new();
        m.create(CLASS, "title", IndexKind::Hash);
        m.on_set(CLASS, "title", Oid(1), &Value::Null, &Value::from("Telnet"));
        assert_eq!(
            m.lookup_eq(CLASS, "title", &Value::from("Telnet")).unwrap(),
            vec![Oid(1)]
        );
        assert!(m
            .lookup_range(CLASS, "title", &Value::Null, &Value::Null)
            .is_none());
        assert!(m.has_index(CLASS, "title"));
        assert!(!m.has_ordered_index(CLASS, "title"));
    }

    #[test]
    fn updates_move_entries() {
        let mut m = IndexManager::new();
        m.create(CLASS, "year", IndexKind::BTree);
        m.on_set(CLASS, "year", Oid(1), &Value::Null, &Value::Int(1994));
        m.on_set(CLASS, "year", Oid(1), &Value::Int(1994), &Value::Int(1995));
        assert!(m
            .lookup_eq(CLASS, "year", &Value::Int(1994))
            .unwrap()
            .is_empty());
        assert_eq!(
            m.lookup_eq(CLASS, "year", &Value::Int(1995)).unwrap(),
            vec![Oid(1)]
        );
        // Clearing removes entirely.
        m.on_set(CLASS, "year", Oid(1), &Value::Int(1995), &Value::Null);
        assert!(m
            .lookup_eq(CLASS, "year", &Value::Int(1995))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unindexed_lookup_is_none() {
        let m = IndexManager::new();
        assert!(m.lookup_eq(CLASS, "x", &Value::Int(1)).is_none());
    }

    #[test]
    fn separate_classes_have_separate_indexes() {
        let mut m = IndexManager::new();
        m.create(ClassId(0), "a", IndexKind::Hash);
        m.create(ClassId(1), "a", IndexKind::Hash);
        m.on_set(ClassId(0), "a", Oid(1), &Value::Null, &Value::Int(1));
        assert!(m
            .lookup_eq(ClassId(1), "a", &Value::Int(1))
            .unwrap()
            .is_empty());
        assert_eq!(m.list().len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    const CLASS: ClassId = ClassId(0);

    #[derive(Debug, Clone)]
    enum Op {
        Set(u8, i16),
        Clear(u8),
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                (any::<u8>(), any::<i16>()).prop_map(|(o, v)| Op::Set(o, v)),
                any::<u8>().prop_map(Op::Clear),
            ],
            1..80,
        )
    }

    proptest! {
        /// B+tree and hash indexes always agree with a model map on
        /// equality lookups, under arbitrary attribute-mutation traces.
        #[test]
        fn both_index_kinds_match_the_model(trace in ops()) {
            let mut m = IndexManager::new();
            m.create(CLASS, "tree", IndexKind::BTree);
            m.create(CLASS, "hash", IndexKind::Hash);
            // Model: oid → current value.
            let mut model: BTreeMap<u8, i16> = BTreeMap::new();
            for op in &trace {
                match op {
                    Op::Set(o, v) => {
                        let old = model
                            .insert(*o, *v)
                            .map(|x| Value::Int(i64::from(x)))
                            .unwrap_or(Value::Null);
                        let new = Value::Int(i64::from(*v));
                        m.on_set(CLASS, "tree", Oid(u64::from(*o)), &old, &new);
                        m.on_set(CLASS, "hash", Oid(u64::from(*o)), &old, &new);
                    }
                    Op::Clear(o) => {
                        let old = model
                            .remove(o)
                            .map(|x| Value::Int(i64::from(x)))
                            .unwrap_or(Value::Null);
                        m.on_set(CLASS, "tree", Oid(u64::from(*o)), &old, &Value::Null);
                        m.on_set(CLASS, "hash", Oid(u64::from(*o)), &old, &Value::Null);
                    }
                }
            }
            // Every value present in the model is found by both indexes,
            // exactly.
            let mut by_value: BTreeMap<i16, Vec<Oid>> = BTreeMap::new();
            for (&o, &v) in &model {
                by_value.entry(v).or_default().push(Oid(u64::from(o)));
            }
            for (v, expected) in &by_value {
                let value = Value::Int(i64::from(*v));
                prop_assert_eq!(&m.lookup_eq(CLASS, "tree", &value).unwrap(), expected);
                prop_assert_eq!(&m.lookup_eq(CLASS, "hash", &value).unwrap(), expected);
            }
            // Range over everything equals the model's full ordering.
            let all: Vec<Oid> = m
                .lookup_range_opt(CLASS, "tree", None, None)
                .unwrap();
            let expected: Vec<Oid> = by_value
                .values()
                .flat_map(|v| v.iter().copied())
                .collect();
            prop_assert_eq!(all, expected);
        }
    }
}
