//! An arena-based B+tree.
//!
//! Keys live in the leaves; internal nodes hold separator keys. Leaves are
//! chained for range scans. Deletion is *lazy*: entries are removed from
//! their leaf but underfull leaves are not eagerly rebalanced (the
//! standard trade-off in write-heavy stores); a [`BPlusTree::rebuild`]
//! compaction restores minimal height, and the store invokes it from
//! snapshot checkpoints.

const ORDER: usize = 16; // max children of an internal node
const MAX_KEYS: usize = ORDER - 1;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        keys: Vec<K>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
        next: Option<usize>,
    },
}

/// A B+tree mapping ordered keys to values.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    arena: Vec<Node<K, V>>,
    root: usize,
    len: usize,
}

impl<K: Ord + Clone, V: Clone> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> BPlusTree<K, V> {
    /// Create an empty tree.
    pub fn new() -> Self {
        BPlusTree {
            arena: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `key → value`. Returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.insert_rec(self.root, key, value) {
            InsertResult::Replaced(old) => Some(old),
            InsertResult::Inserted => {
                self.len += 1;
                None
            }
            InsertResult::Split(sep, right) => {
                self.len += 1;
                let old_root = self.root;
                self.arena.push(Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                });
                self.root = self.arena.len() - 1;
                None
            }
        }
    }

    fn insert_rec(&mut self, node: usize, key: K, value: V) -> InsertResult<K, V> {
        match &mut self.arena[node] {
            Node::Leaf { keys, vals, .. } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = std::mem::replace(&mut vals[i], value);
                        return InsertResult::Replaced(old);
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, value);
                    }
                }
                if keys.len() <= MAX_KEYS {
                    return InsertResult::Inserted;
                }
                // Split the leaf.
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep = right_keys[0].clone();
                let next = match &self.arena[node] {
                    Node::Leaf { next, .. } => *next,
                    _ => unreachable!(),
                };
                let right_idx = self.arena.len();
                self.arena.push(Node::Leaf {
                    keys: right_keys,
                    vals: right_vals,
                    next,
                });
                if let Node::Leaf { next, .. } = &mut self.arena[node] {
                    *next = Some(right_idx);
                }
                InsertResult::Split(sep, right_idx)
            }
            Node::Internal { keys, .. } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let child = match &self.arena[node] {
                    Node::Internal { children, .. } => children[idx],
                    _ => unreachable!(),
                };
                match self.insert_rec(child, key, value) {
                    InsertResult::Split(sep, right) => {
                        let (keys, children) = match &mut self.arena[node] {
                            Node::Internal { keys, children } => (keys, children),
                            _ => unreachable!(),
                        };
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() <= MAX_KEYS {
                            return InsertResult::Inserted;
                        }
                        // Split the internal node.
                        let mid = keys.len() / 2;
                        let sep_up = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // remove sep_up from the left node
                        let right_children = children.split_off(mid + 1);
                        let right_idx = self.arena.len();
                        self.arena.push(Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        });
                        InsertResult::Split(sep_up, right_idx)
                    }
                    other => other,
                }
            }
        }
    }

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = self.root;
        loop {
            match &self.arena[node] {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = children[idx];
                }
                Node::Leaf { keys, vals, .. } => {
                    return keys.binary_search(key).ok().map(|i| &vals[i]);
                }
            }
        }
    }

    /// Remove `key`, returning its value. Lazy: no rebalancing.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut node = self.root;
        while let Node::Internal { keys, children } = &self.arena[node] {
            let idx = match keys.binary_search(key) {
                Ok(i) => i + 1,
                Err(i) => i,
            };
            node = children[idx];
        }
        match &mut self.arena[node] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    let v = vals.remove(i);
                    self.len -= 1;
                    Some(v)
                }
                Err(_) => None,
            },
            _ => unreachable!(),
        }
    }

    fn first_leaf(&self) -> usize {
        let mut node = self.root;
        loop {
            match &self.arena[node] {
                Node::Internal { children, .. } => node = children[0],
                Node::Leaf { .. } => return node,
            }
        }
    }

    /// Leaf that may contain `key` (or the first key above it).
    fn seek_leaf(&self, key: &K) -> usize {
        let mut node = self.root;
        loop {
            match &self.arena[node] {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = children[idx];
                }
                Node::Leaf { .. } => return node,
            }
        }
    }

    /// Iterate over all entries in key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            tree: self,
            leaf: Some(self.first_leaf()),
            idx: 0,
            upper: None,
        }
    }

    /// Iterate over entries with `lo <= key <= hi`.
    pub fn range(&self, lo: &K, hi: &K) -> Iter<'_, K, V> {
        let leaf = self.seek_leaf(lo);
        let idx = match &self.arena[leaf] {
            Node::Leaf { keys, .. } => match keys.binary_search(lo) {
                Ok(i) => i,
                Err(i) => i,
            },
            _ => unreachable!(),
        };
        Iter {
            tree: self,
            leaf: Some(leaf),
            idx,
            upper: Some(hi.clone()),
        }
    }

    /// Iterate over entries with `key >= lo` (no upper bound).
    pub fn range_from(&self, lo: &K) -> Iter<'_, K, V> {
        let leaf = self.seek_leaf(lo);
        let idx = match &self.arena[leaf] {
            Node::Leaf { keys, .. } => match keys.binary_search(lo) {
                Ok(i) => i,
                Err(i) => i,
            },
            _ => unreachable!(),
        };
        Iter {
            tree: self,
            leaf: Some(leaf),
            idx,
            upper: None,
        }
    }

    /// Rebuild the tree compactly (drops tombstoned arena slots and
    /// restores balance after many lazy deletions).
    pub fn rebuild(&mut self) {
        let entries: Vec<(K, V)> = self.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let mut fresh = BPlusTree::new();
        for (k, v) in entries {
            fresh.insert(k, v);
        }
        *self = fresh;
    }

    /// Height of the tree (1 = single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.arena[node] {
                Node::Internal { children, .. } => {
                    h += 1;
                    node = children[0];
                }
                Node::Leaf { .. } => return h,
            }
        }
    }
}

enum InsertResult<K, V> {
    Inserted,
    Replaced(V),
    Split(K, usize),
}

/// In-order iterator over a [`BPlusTree`].
pub struct Iter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<usize>,
    idx: usize,
    upper: Option<K>,
}

impl<'a, K: Ord + Clone, V: Clone> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            match &self.tree.arena[leaf] {
                Node::Leaf { keys, vals, next } => {
                    if self.idx < keys.len() {
                        let k = &keys[self.idx];
                        if let Some(hi) = &self.upper {
                            if k > hi {
                                self.leaf = None;
                                return None;
                            }
                        }
                        let v = &vals[self.idx];
                        self.idx += 1;
                        return Some((k, v));
                    }
                    self.leaf = *next;
                    self.idx = 0;
                }
                _ => unreachable!("leaf chain contains only leaves"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5, "five"), None);
        assert_eq!(t.insert(1, "one"), None);
        assert_eq!(t.insert(9, "nine"), None);
        assert_eq!(t.get(&5), Some(&"five"));
        assert_eq!(t.get(&2), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn insert_replaces_existing() {
        let mut t = BPlusTree::new();
        t.insert(1, "a");
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn splits_produce_sorted_iteration() {
        let mut t = BPlusTree::new();
        // Insert descending to force splits on the left edge.
        for i in (0..500).rev() {
            t.insert(i, i * 2);
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() > 1, "tree must actually split");
        let keys: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        let expect: Vec<i32> = (0..500).collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn range_is_inclusive_both_ends() {
        let mut t = BPlusTree::new();
        for i in 0..100 {
            t.insert(i, ());
        }
        let got: Vec<i32> = t.range(&10, &20).map(|(k, _)| *k).collect();
        let expect: Vec<i32> = (10..=20).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn range_with_absent_bounds() {
        let mut t = BPlusTree::new();
        for i in (0..100).step_by(10) {
            t.insert(i, ());
        }
        let got: Vec<i32> = t.range(&15, &45).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![20, 30, 40]);
        let empty: Vec<i32> = t.range(&101, &200).map(|(k, _)| *k).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn remove_then_get_misses() {
        let mut t = BPlusTree::new();
        for i in 0..200 {
            t.insert(i, i);
        }
        for i in (0..200).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(&4), None);
        assert_eq!(t.get(&5), Some(&5));
        assert_eq!(t.remove(&4), None, "double remove");
        let keys: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        let expect: Vec<i32> = (0..200).filter(|i| i % 2 == 1).collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn rebuild_preserves_entries_and_reduces_height() {
        let mut t = BPlusTree::new();
        for i in 0..1000 {
            t.insert(i, i);
        }
        for i in 0..990 {
            t.remove(&i);
        }
        let before: Vec<(i32, i32)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let h_before = t.height();
        t.rebuild();
        let after: Vec<(i32, i32)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(before, after);
        assert!(t.height() <= h_before);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: BPlusTree<i32, ()> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn string_keys_work() {
        let mut t = BPlusTree::new();
        for w in ["pear", "apple", "quince", "banana"] {
            t.insert(w.to_string(), w.len());
        }
        let keys: Vec<&str> = t.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["apple", "banana", "pear", "quince"]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u16, u16),
        Remove(u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u16>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
            any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        ]
    }

    proptest! {
        /// The B+tree behaves identically to the standard-library model
        /// under arbitrary insert/remove interleavings.
        #[test]
        fn matches_btreemap_model(ops in prop::collection::vec(op_strategy(), 1..400)) {
            let mut tree = BPlusTree::new();
            let mut model = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(tree.remove(&k), model.remove(&k));
                    }
                }
            }
            prop_assert_eq!(tree.len(), model.len());
            let tree_entries: Vec<(u16, u16)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
            let model_entries: Vec<(u16, u16)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(tree_entries, model_entries);
        }

        /// Range scans agree with the model for arbitrary bounds.
        #[test]
        fn range_matches_model(
            entries in prop::collection::btree_map(any::<u16>(), any::<u16>(), 0..200),
            lo in any::<u16>(),
            hi in any::<u16>(),
        ) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let mut tree = BPlusTree::new();
            for (&k, &v) in &entries {
                tree.insert(k, v);
            }
            let got: Vec<(u16, u16)> = tree.range(&lo, &hi).map(|(k, v)| (*k, *v)).collect();
            let expect: Vec<(u16, u16)> =
                entries.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
