//! The database facade: schema + store + indexes + WAL + methods.

use std::path::{Path, PathBuf};

use crate::error::{DbError, Result};
use crate::index::{IndexKind, IndexManager};
use crate::method::{MethodCost, MethodCtx, MethodRegistry};
use crate::object::Object;
use crate::oid::Oid;
use crate::query::{self, Row};
use crate::schema::{ClassId, Schema};
use crate::store::snapshot::{self, IndexDef};
use crate::store::wal::{self, Record, WalWriter};
use crate::store::ObjectStore;
use crate::txn::{Txn, UndoOp};
use crate::value::Value;

const SNAPSHOT_FILE: &str = "snapshot.odb";
const WAL_FILE: &str = "wal.odb";

/// An object-oriented database. Create with [`Database::in_memory`] for a
/// volatile instance or [`Database::open`] for a durable one (snapshot +
/// write-ahead log in a directory).
#[derive(Debug)]
pub struct Database {
    schema: Schema,
    store: ObjectStore,
    indexes: IndexManager,
    index_defs: Vec<IndexDef>,
    methods: MethodRegistry,
    constants: std::collections::HashMap<String, Value>,
    wal: Option<WalWriter>,
    dir: Option<PathBuf>,
    next_txn: u64,
}

impl Database {
    /// A volatile database (no files).
    pub fn in_memory() -> Self {
        let mut db = Database {
            schema: Schema::new(),
            store: ObjectStore::new(),
            indexes: IndexManager::new(),
            index_defs: Vec::new(),
            methods: MethodRegistry::new(),
            constants: std::collections::HashMap::new(),
            wal: None,
            dir: None,
            next_txn: 1,
        };
        db.register_builtins();
        db
    }

    /// Open (or create) a durable database in `dir`: loads the snapshot if
    /// present, replays the WAL tail, and appends future commits to it.
    pub fn open(dir: &Path) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut db = Database::in_memory();
        db.dir = Some(dir.to_path_buf());

        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            let snap = snapshot::read(&snap_path)?;
            db.schema = snap.schema;
            db.store = snap.store;
            for def in &snap.indexes {
                let kind = if def.kind == 0 {
                    IndexKind::BTree
                } else {
                    IndexKind::Hash
                };
                db.indexes.create(def.class, &def.attr, kind);
            }
            db.index_defs = snap.indexes;
            db.backfill_all_indexes();
        }

        let wal_path = dir.join(WAL_FILE);
        if wal_path.exists() {
            for record in wal::replay(&wal_path)? {
                db.apply_record(record)?;
            }
        }
        db.wal = Some(WalWriter::open(&wal_path)?);
        Ok(db)
    }

    /// Attach an in-memory (or re-homed) database to `dir` and persist
    /// it there: snapshot written, WAL opened for future commits.
    pub fn persist_to(&mut self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        self.dir = Some(dir.to_path_buf());
        self.checkpoint()
    }

    /// Write a snapshot and truncate the WAL. Also compacts lazy-deleted
    /// B+tree nodes.
    pub fn checkpoint(&mut self) -> Result<()> {
        let Some(dir) = self.dir.clone() else {
            return Ok(()); // in-memory: nothing to do
        };
        self.indexes.compact();
        snapshot::write(
            &dir.join(SNAPSHOT_FILE),
            &self.schema,
            &self.index_defs,
            &self.store,
        )?;
        // Truncate the WAL by re-creating it.
        let wal_path = dir.join(WAL_FILE);
        self.wal = None;
        std::fs::write(&wal_path, b"")?;
        self.wal = Some(WalWriter::open(&wal_path)?);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Schema & indexes (auto-committed DDL)
    // ------------------------------------------------------------------

    /// Define a class; `parent` by name.
    pub fn define_class(&mut self, name: &str, parent: Option<&str>) -> Result<ClassId> {
        let parent_id = parent.map(|p| self.schema.class_id(p)).transpose()?;
        let id = self.schema.define(name, parent_id)?;
        self.log_ddl(Record::DefineClass {
            name: name.to_string(),
            parent: parent.map(str::to_string),
        })?;
        Ok(id)
    }

    /// Create a secondary index on `(class, attr)` and backfill it from
    /// existing objects (subclass instances included).
    pub fn create_index(&mut self, class: &str, attr: &str, kind: IndexKind) -> Result<()> {
        let class_id = self.schema.class_id(class)?;
        self.indexes.create(class_id, attr, kind);
        self.index_defs
            .retain(|d| !(d.class == class_id && d.attr == attr));
        self.index_defs.push(IndexDef {
            class: class_id,
            attr: attr.to_string(),
            kind: if kind == IndexKind::BTree { 0 } else { 1 },
        });
        self.backfill_index(class_id, attr);
        self.log_ddl(Record::CreateIndex {
            class: class.to_string(),
            attr: attr.to_string(),
            kind: if kind == IndexKind::BTree { 0 } else { 1 },
        })?;
        Ok(())
    }

    fn backfill_index(&mut self, class: ClassId, attr: &str) {
        let oids: Vec<Oid> = self.extent(class, true);
        for oid in oids {
            let value = self.store.get(oid).expect("extent oid live").attr(attr);
            if !matches!(value, Value::Null) {
                // The index is keyed by the *indexed* class even for
                // subclass instances, so lookups on the indexed class see
                // its full extent.
                self.indexes.on_set(class, attr, oid, &Value::Null, &value);
            }
        }
    }

    fn backfill_all_indexes(&mut self) {
        let defs = self.index_defs.clone();
        for def in defs {
            self.backfill_index(def.class, &def.attr);
        }
    }

    fn log_ddl(&mut self, record: Record) -> Result<()> {
        if let Some(w) = &mut self.wal {
            w.append_batch(&[record])?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Start a transaction.
    pub fn begin(&mut self) -> Txn {
        let id = self.next_txn;
        self.next_txn += 1;
        Txn::new(id)
    }

    /// Make the transaction's effects durable.
    pub fn commit(&mut self, mut txn: Txn) -> Result<()> {
        if !txn.active {
            return Err(DbError::InactiveTxn);
        }
        txn.active = false;
        if let Some(w) = &mut self.wal {
            if !txn.redo.is_empty() {
                w.append_batch(&txn.redo)?;
            }
        }
        Ok(())
    }

    /// Roll the transaction's effects back in memory.
    pub fn abort(&mut self, mut txn: Txn) -> Result<()> {
        if !txn.active {
            return Err(DbError::InactiveTxn);
        }
        txn.active = false;
        for op in txn.undo.drain(..).rev() {
            match op {
                UndoOp::UnCreate(oid) => {
                    let obj = self.store.take(oid)?;
                    debug_assert!(obj.attrs.is_empty(), "attr undos run first");
                }
                UndoOp::UnSetAttr { oid, attr, old } => {
                    let class = self.store.get(oid)?.class;
                    let current = self.store.get(oid)?.attr(&attr);
                    self.store.get_mut(oid)?.set_attr(&attr, old.clone());
                    self.maintain_indexes(class, &attr, oid, &current, &old);
                }
                UndoOp::UnDelete(obj) => {
                    let obj = *obj;
                    let class = obj.class;
                    let oid = obj.oid;
                    let attrs: Vec<(String, Value)> = obj
                        .attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    self.store.put(obj);
                    for (attr, value) in attrs {
                        self.maintain_indexes(class, &attr, oid, &Value::Null, &value);
                    }
                }
            }
        }
        Ok(())
    }

    fn check_active(txn: &Txn) -> Result<()> {
        if txn.active {
            Ok(())
        } else {
            Err(DbError::InactiveTxn)
        }
    }

    // ------------------------------------------------------------------
    // Object operations
    // ------------------------------------------------------------------

    /// Create an object of `class`.
    pub fn create_object(&mut self, txn: &mut Txn, class: ClassId) -> Result<Oid> {
        Self::check_active(txn)?;
        if class.0 as usize >= self.schema.len() {
            return Err(DbError::UnknownClass(format!("classid {}", class.0)));
        }
        let oid = self.store.allocate_oid();
        self.store.put(Object::new(oid, class));
        txn.redo.push(Record::Create {
            oid,
            class: self.schema.name(class).to_string(),
        });
        txn.undo.push(UndoOp::UnCreate(oid));
        Ok(oid)
    }

    /// Set `attr` of `oid` (Null clears).
    pub fn set_attr(&mut self, txn: &mut Txn, oid: Oid, attr: &str, value: Value) -> Result<()> {
        Self::check_active(txn)?;
        let class = self.store.get(oid)?.class;
        let old = self.store.get_mut(oid)?.set_attr(attr, value.clone());
        self.maintain_indexes(class, attr, oid, &old, &value);
        txn.redo.push(Record::SetAttr {
            oid,
            attr: attr.to_string(),
            value,
        });
        txn.undo.push(UndoOp::UnSetAttr {
            oid,
            attr: attr.to_string(),
            old,
        });
        Ok(())
    }

    /// Delete `oid`.
    pub fn delete_object(&mut self, txn: &mut Txn, oid: Oid) -> Result<()> {
        Self::check_active(txn)?;
        let obj = self.store.take(oid)?;
        for (attr, value) in &obj.attrs {
            self.maintain_indexes(obj.class, attr, oid, value, &Value::Null);
        }
        txn.redo.push(Record::Delete { oid });
        txn.undo.push(UndoOp::UnDelete(Box::new(obj)));
        Ok(())
    }

    /// Index maintenance for an attribute transition, applied to the
    /// object's class and every ancestor (an index on a superclass covers
    /// subclass instances).
    fn maintain_indexes(&mut self, class: ClassId, attr: &str, oid: Oid, old: &Value, new: &Value) {
        let mut cur = Some(class);
        while let Some(c) = cur {
            self.indexes.on_set(c, attr, oid, old, new);
            cur = self.schema.class(c).parent;
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Borrow an object.
    pub fn object(&self, oid: Oid) -> Result<&Object> {
        self.store.get(oid)
    }

    /// Attribute of an object (`Null` when absent).
    pub fn get_attr(&self, oid: Oid, attr: &str) -> Result<Value> {
        self.store.attr(oid, attr)
    }

    /// OIDs in the extent of `class`, optionally including subclasses,
    /// in OID order.
    pub fn extent(&self, class: ClassId, include_subclasses: bool) -> Vec<Oid> {
        if include_subclasses {
            let mut out: Vec<Oid> = self
                .schema
                .subclasses(class)
                .into_iter()
                .flat_map(|c| self.store.extent(c).collect::<Vec<_>>())
                .collect();
            out.sort();
            out
        } else {
            self.store.extent(class).collect()
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The index manager.
    pub fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    /// The method registry.
    pub fn methods(&self) -> &MethodRegistry {
        &self.methods
    }

    /// Mutable method registry (for application/coupling registration).
    pub fn methods_mut(&mut self) -> &mut MethodRegistry {
        &mut self.methods
    }

    /// Bind `name` as a query-level constant: an identifier usable in
    /// queries without a FROM binding. The paper's example queries
    /// reference collection objects this way ("The collection collPara
    /// denotes the OID of a paragraph-collection", Section 4.4).
    pub fn define_constant(&mut self, name: &str, value: Value) {
        self.constants.insert(name.to_string(), value);
    }

    /// Look up a query constant.
    pub fn constant(&self, name: &str) -> Option<&Value> {
        self.constants.get(name)
    }

    /// A read-only method context over this database.
    pub fn method_ctx(&self) -> MethodCtx<'_> {
        MethodCtx {
            store: &self.store,
            schema: &self.schema,
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Parse, optimize and run a VQL query. A leading `EXPLAIN` keyword
    /// returns the optimizer's plan (one string row per plan line)
    /// instead of executing.
    pub fn query(&self, text: &str) -> Result<Vec<Row>> {
        let trimmed = text.trim_start();
        let is_explain = trimmed
            .get(..7)
            .is_some_and(|kw| kw.eq_ignore_ascii_case("explain"))
            && trimmed[7..].starts_with(char::is_whitespace);
        if is_explain {
            let plan = query::exec::explain_only(self, &trimmed[7..])?;
            return Ok(plan.lines().map(|l| Row(vec![Value::from(l)])).collect());
        }
        query::run(self, text)
    }

    /// Parse, optimize and run a query, also returning the textual plan
    /// (for the mixed-query experiments).
    pub fn query_explain(&self, text: &str) -> Result<(Vec<Row>, String)> {
        query::run_explain(self, text)
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    fn apply_record(&mut self, record: Record) -> Result<()> {
        match record {
            Record::DefineClass { name, parent } => {
                let parent_id = parent
                    .as_deref()
                    .map(|p| self.schema.class_id(p))
                    .transpose()?;
                self.schema.define(&name, parent_id)?;
            }
            Record::CreateIndex { class, attr, kind } => {
                let class_id = self.schema.class_id(&class)?;
                let k = if kind == 0 {
                    IndexKind::BTree
                } else {
                    IndexKind::Hash
                };
                self.indexes.create(class_id, &attr, k);
                self.index_defs
                    .retain(|d| !(d.class == class_id && d.attr == attr));
                self.index_defs.push(IndexDef {
                    class: class_id,
                    attr: attr.clone(),
                    kind,
                });
                self.backfill_index(class_id, &attr);
            }
            Record::Create { oid, class } => {
                let class_id = self.schema.class_id(&class)?;
                self.store.bump_oid_floor(oid.0 + 1);
                self.store.put(Object::new(oid, class_id));
            }
            Record::SetAttr { oid, attr, value } => {
                let class = self.store.get(oid)?.class;
                let old = self.store.get_mut(oid)?.set_attr(&attr, value.clone());
                self.maintain_indexes(class, &attr, oid, &old, &value);
            }
            Record::Delete { oid } => {
                let obj = self.store.take(oid)?;
                for (attr, value) in &obj.attrs {
                    self.maintain_indexes(obj.class, attr, oid, value, &Value::Null);
                }
            }
            Record::Commit => {}
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Built-in navigation methods
    // ------------------------------------------------------------------

    /// Register the built-in navigation methods the document framework
    /// relies on. Conventions: tree structure lives in the `parent`
    /// (Oid) and `children` (List of Oids) attributes; leaf text in
    /// `text`. The SGML loader establishes these attributes.
    fn register_builtins(&mut self) {
        let m = &mut self.methods;

        m.register("getAttributeValue", MethodCost::Cheap, |ctx, oid, args| {
            let name =
                args.first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| DbError::BadMethodArgs {
                        method: "getAttributeValue".into(),
                        reason: "expected one string argument".into(),
                    })?;
            ctx.store.attr(oid, name)
        });

        m.register("getClassName", MethodCost::Cheap, |ctx, oid, _| {
            let class = ctx.store.get(oid)?.class;
            Ok(Value::from(ctx.schema.name(class)))
        });

        m.register("length", MethodCost::Cheap, |ctx, oid, _| {
            match ctx.store.attr(oid, "text")? {
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                _ => Ok(Value::Null),
            }
        });

        m.register("getParent", MethodCost::Cheap, |ctx, oid, _| {
            ctx.store.attr(oid, "parent")
        });

        m.register("getChildren", MethodCost::Cheap, |ctx, oid, _| {
            ctx.store.attr(oid, "children")
        });

        m.register("getNext", MethodCost::Cheap, |ctx, oid, _| {
            sibling(ctx, oid, 1)
        });

        m.register("getPrev", MethodCost::Cheap, |ctx, oid, _| {
            sibling(ctx, oid, -1)
        });

        m.register("getContaining", MethodCost::Cheap, |ctx, oid, args| {
            let target =
                args.first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| DbError::BadMethodArgs {
                        method: "getContaining".into(),
                        reason: "expected one class-name argument".into(),
                    })?;
            let target_id = ctx.schema.class_id(target)?;
            let mut cur = Some(oid);
            while let Some(o) = cur {
                let obj = ctx.store.get(o)?;
                if ctx.schema.is_subclass(obj.class, target_id) {
                    return Ok(Value::Oid(o));
                }
                cur = obj.attr("parent").as_oid();
            }
            Ok(Value::Null)
        });

        m.register("getRoot", MethodCost::Cheap, |ctx, oid, _| {
            let mut cur = oid;
            loop {
                match ctx.store.get(cur)?.attr("parent").as_oid() {
                    Some(p) => cur = p,
                    None => return Ok(Value::Oid(cur)),
                }
            }
        });
    }
}

/// Shared implementation of getNext/getPrev: the sibling `offset` away in
/// the parent's `children` list.
fn sibling(ctx: &MethodCtx<'_>, oid: Oid, offset: i64) -> Result<Value> {
    let Some(parent) = ctx.store.get(oid)?.attr("parent").as_oid() else {
        return Ok(Value::Null);
    };
    let children = ctx.store.attr(parent, "children")?;
    let Some(list) = children.as_list() else {
        return Ok(Value::Null);
    };
    let me = Value::Oid(oid);
    let idx = list.iter().position(|v| v == &me);
    match idx {
        Some(i) => {
            let target = i as i64 + offset;
            if target < 0 || target as usize >= list.len() {
                Ok(Value::Null)
            } else {
                Ok(list[target as usize].clone())
            }
        }
        None => Ok(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_db() -> (Database, ClassId, Vec<Oid>) {
        let mut db = Database::in_memory();
        let doc = db.define_class("MMFDOC", None).unwrap();
        let para = db.define_class("PARA", None).unwrap();
        let mut txn = db.begin();
        let d = db.create_object(&mut txn, doc).unwrap();
        let p1 = db.create_object(&mut txn, para).unwrap();
        let p2 = db.create_object(&mut txn, para).unwrap();
        db.set_attr(
            &mut txn,
            d,
            "children",
            Value::List(vec![Value::Oid(p1), Value::Oid(p2)]),
        )
        .unwrap();
        db.set_attr(&mut txn, p1, "parent", Value::Oid(d)).unwrap();
        db.set_attr(&mut txn, p2, "parent", Value::Oid(d)).unwrap();
        db.set_attr(&mut txn, p1, "text", Value::from("Telnet is a protocol"))
            .unwrap();
        db.commit(txn).unwrap();
        (db, para, vec![d, p1, p2])
    }

    #[test]
    fn create_set_get() {
        let (db, _, oids) = doc_db();
        assert_eq!(
            db.get_attr(oids[1], "text").unwrap(),
            Value::from("Telnet is a protocol")
        );
        assert_eq!(db.get_attr(oids[1], "missing").unwrap(), Value::Null);
    }

    #[test]
    fn abort_rolls_back_everything() {
        let (mut db, para, oids) = doc_db();
        let before = db.store().len();
        let mut txn = db.begin();
        let fresh = db.create_object(&mut txn, para).unwrap();
        db.set_attr(&mut txn, fresh, "text", Value::from("x"))
            .unwrap();
        db.set_attr(&mut txn, oids[1], "text", Value::from("changed"))
            .unwrap();
        db.delete_object(&mut txn, oids[2]).unwrap();
        db.abort(txn).unwrap();
        assert_eq!(db.store().len(), before);
        assert!(!db.store().contains(fresh));
        assert!(db.store().contains(oids[2]));
        assert_eq!(
            db.get_attr(oids[1], "text").unwrap(),
            Value::from("Telnet is a protocol")
        );
    }

    #[test]
    fn committed_txn_handles_cannot_be_reused() {
        let mut db = Database::in_memory();
        let c = db.define_class("A", None).unwrap();
        let mut txn = db.begin();
        db.create_object(&mut txn, c).unwrap();
        // Simulate reuse by marking inactive through commit of a moved-out
        // handle: create a second txn and commit it twice via abort.
        let t2 = db.begin();
        db.commit(t2).unwrap();
        db.commit(txn).unwrap();
    }

    #[test]
    fn navigation_builtins() {
        let (db, _, oids) = doc_db();
        let (d, p1, p2) = (oids[0], oids[1], oids[2]);
        let ctx = db.method_ctx();
        let reg = db.methods();
        assert_eq!(
            reg.invoke(&ctx, "getNext", p1, &[]).unwrap(),
            Value::Oid(p2)
        );
        assert_eq!(reg.invoke(&ctx, "getNext", p2, &[]).unwrap(), Value::Null);
        assert_eq!(
            reg.invoke(&ctx, "getPrev", p2, &[]).unwrap(),
            Value::Oid(p1)
        );
        assert_eq!(
            reg.invoke(&ctx, "getParent", p1, &[]).unwrap(),
            Value::Oid(d)
        );
        assert_eq!(reg.invoke(&ctx, "getRoot", p1, &[]).unwrap(), Value::Oid(d));
        assert_eq!(
            reg.invoke(&ctx, "getContaining", p1, &[Value::from("MMFDOC")])
                .unwrap(),
            Value::Oid(d)
        );
        assert_eq!(
            reg.invoke(&ctx, "getClassName", p1, &[]).unwrap(),
            Value::from("PARA")
        );
        assert_eq!(
            reg.invoke(&ctx, "length", p1, &[]).unwrap(),
            Value::Int("Telnet is a protocol".len() as i64)
        );
        assert_eq!(reg.invoke(&ctx, "length", d, &[]).unwrap(), Value::Null);
    }

    #[test]
    fn subclass_extents() {
        let mut db = Database::in_memory();
        let root = db.define_class("IRSObject", None).unwrap();
        let para = db.define_class("PARA", Some("IRSObject")).unwrap();
        let mut txn = db.begin();
        let a = db.create_object(&mut txn, root).unwrap();
        let b = db.create_object(&mut txn, para).unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.extent(root, false), vec![a]);
        assert_eq!(db.extent(root, true), vec![a, b]);
        assert_eq!(db.extent(para, true), vec![b]);
    }

    #[test]
    fn index_covers_superclass_lookups() {
        let mut db = Database::in_memory();
        db.define_class("IRSObject", None).unwrap();
        let para = db.define_class("PARA", Some("IRSObject")).unwrap();
        let root_id = db.schema().class_id("IRSObject").unwrap();
        db.create_index("IRSObject", "year", IndexKind::BTree)
            .unwrap();
        let mut txn = db.begin();
        let p = db.create_object(&mut txn, para).unwrap();
        db.set_attr(&mut txn, p, "year", Value::Int(1994)).unwrap();
        db.commit(txn).unwrap();
        assert_eq!(
            db.indexes()
                .lookup_eq(root_id, "year", &Value::Int(1994))
                .unwrap(),
            vec![p]
        );
    }

    #[test]
    fn durable_round_trip_with_recovery() {
        let dir = std::env::temp_dir().join("oodb-db-tests").join("durable");
        let _ = std::fs::remove_dir_all(&dir);
        let oid;
        {
            let mut db = Database::open(&dir).unwrap();
            let c = db.define_class("PARA", None).unwrap();
            db.create_index("PARA", "year", IndexKind::BTree).unwrap();
            let mut txn = db.begin();
            oid = db.create_object(&mut txn, c).unwrap();
            db.set_attr(&mut txn, oid, "year", Value::Int(1994))
                .unwrap();
            db.commit(txn).unwrap();

            // An aborted transaction must not survive recovery.
            let mut t2 = db.begin();
            let ghost = db.create_object(&mut t2, c).unwrap();
            db.set_attr(&mut t2, ghost, "year", Value::Int(2000))
                .unwrap();
            db.abort(t2).unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(db.get_attr(oid, "year").unwrap(), Value::Int(1994));
            assert_eq!(db.store().len(), 1, "aborted create not recovered");
            let para = db.schema().class_id("PARA").unwrap();
            assert_eq!(
                db.indexes()
                    .lookup_eq(para, "year", &Value::Int(1994))
                    .unwrap(),
                vec![oid]
            );
        }
    }

    #[test]
    fn checkpoint_then_recover() {
        let dir = std::env::temp_dir()
            .join("oodb-db-tests")
            .join("checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
        let (a, b);
        {
            let mut db = Database::open(&dir).unwrap();
            let c = db.define_class("PARA", None).unwrap();
            let mut txn = db.begin();
            a = db.create_object(&mut txn, c).unwrap();
            db.set_attr(&mut txn, a, "n", Value::Int(1)).unwrap();
            db.commit(txn).unwrap();
            db.checkpoint().unwrap();
            // Post-checkpoint work lands in the fresh WAL.
            let mut txn = db.begin();
            b = db.create_object(&mut txn, c).unwrap();
            db.set_attr(&mut txn, b, "n", Value::Int(2)).unwrap();
            db.commit(txn).unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(db.get_attr(a, "n").unwrap(), Value::Int(1));
            assert_eq!(db.get_attr(b, "n").unwrap(), Value::Int(2));
            // OID allocation continues above recovered objects.
            assert!(db.store().next_oid() > b.0);
        }
    }

    #[test]
    fn explain_keyword_returns_plan_without_executing() {
        let (mut db, _, _) = doc_db();
        db.methods_mut()
            .register("boom", crate::method::MethodCost::Cheap, |_, _, _| {
                panic!("EXPLAIN must not execute predicates")
            });
        let rows = db
            .query("EXPLAIN ACCESS p FROM p IN PARA WHERE p -> boom() = TRUE")
            .unwrap();
        assert!(!rows.is_empty());
        let text: String = rows
            .iter()
            .map(|r| r.col(0).as_str().unwrap_or(""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("extent scan"), "{text}");
        // Case-insensitive keyword.
        assert!(db.query("explain ACCESS p FROM p IN PARA").is_ok());
        // Bad inner query still errors.
        assert!(db.query("EXPLAIN ACCESS").is_err());
    }

    #[test]
    fn delete_maintains_indexes() {
        let mut db = Database::in_memory();
        let c = db.define_class("PARA", None).unwrap();
        db.create_index("PARA", "year", IndexKind::Hash).unwrap();
        let mut txn = db.begin();
        let oid = db.create_object(&mut txn, c).unwrap();
        db.set_attr(&mut txn, oid, "year", Value::Int(1994))
            .unwrap();
        db.delete_object(&mut txn, oid).unwrap();
        db.commit(txn).unwrap();
        assert!(db
            .indexes()
            .lookup_eq(c, "year", &Value::Int(1994))
            .unwrap()
            .is_empty());
    }
}
