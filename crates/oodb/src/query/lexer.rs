//! Tokeniser for the VQL grammar.

use crate::error::{DbError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// `ACCESS` keyword.
    Access,
    /// `FROM` keyword.
    From,
    /// `IN` keyword.
    In,
    /// `WHERE` keyword.
    Where,
    /// `AND` keyword.
    And,
    /// `OR` keyword.
    Or,
    /// `NOT` keyword.
    Not,
    /// `NULL` literal.
    Null,
    /// `TRUE` literal.
    True,
    /// `FALSE` literal.
    False,
    /// `ORDER` keyword.
    Order,
    /// `BY` keyword.
    By,
    /// `ASC` keyword.
    Asc,
    /// `DESC` keyword.
    Desc,
    /// `LIMIT` keyword.
    Limit,
    /// Identifier (variable, class or method name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal (single-quoted).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `->`
    Arrow,
    /// `=` or `==`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset in the query text.
    pub offset: usize,
}

/// Tokenise `input`.
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let err = |offset: usize, reason: &str| DbError::QueryParse {
        reason: reason.to_string(),
        offset,
    };
    while i < bytes.len() {
        let c = input[i..].chars().next().expect("i is on a char boundary");
        if c.is_whitespace() {
            i += c.len_utf8();
            continue;
        }
        let start = i;
        let tok = match c {
            ',' => {
                i += 1;
                Tok::Comma
            }
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                i += 2;
                Tok::Arrow
            }
            '=' => {
                i += if bytes.get(i + 1) == Some(&b'=') {
                    2
                } else {
                    1
                };
                Tok::Eq
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                i += 2;
                Tok::Ne
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'>') => {
                    i += 2;
                    Tok::Ne
                }
                Some(&b'=') => {
                    i += 2;
                    Tok::Le
                }
                _ => {
                    i += 1;
                    Tok::Lt
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ge
                } else {
                    i += 1;
                    Tok::Gt
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&b'\'') => {
                            // Doubled quote is an escaped quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            // Multi-byte chars are copied verbatim.
                            let ch_len = utf8_len(b);
                            s.push_str(
                                std::str::from_utf8(&bytes[i..i + ch_len])
                                    .map_err(|_| err(i, "invalid utf-8 in string"))?,
                            );
                            i += ch_len;
                        }
                        None => return Err(err(start, "unterminated string literal")),
                    }
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let mut j = i + 1;
                let mut is_real = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !is_real {
                        is_real = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                i = j;
                if is_real {
                    Tok::Real(text.parse().map_err(|_| err(start, "bad real literal"))?)
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| err(start, "bad integer literal"))?,
                    )
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                for (off, d) in input[i..].char_indices() {
                    if d.is_alphanumeric() || d == '_' {
                        j = i + off + d.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &input[i..j];
                i = j;
                match word.to_ascii_uppercase().as_str() {
                    "ACCESS" => Tok::Access,
                    "FROM" => Tok::From,
                    "IN" => Tok::In,
                    "WHERE" => Tok::Where,
                    "AND" => Tok::And,
                    "OR" => Tok::Or,
                    "NOT" => Tok::Not,
                    "NULL" => Tok::Null,
                    "TRUE" => Tok::True,
                    "FALSE" => Tok::False,
                    "ORDER" => Tok::Order,
                    "BY" => Tok::By,
                    "ASC" => Tok::Asc,
                    "DESC" => Tok::Desc,
                    "LIMIT" => Tok::Limit,
                    _ => Tok::Ident(word.to_string()),
                }
            }
            other => return Err(err(i, &format!("unexpected character {other:?}"))),
        };
        out.push(Spanned { tok, offset: start });
    }
    Ok(out)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b < 0xe0 => 2,
        b if b < 0xf0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Tok> {
        lex(input).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("access From WHERE"),
            vec![Tok::Access, Tok::From, Tok::Where]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("-> = == != <> < <= > >="),
            vec![
                Tok::Arrow,
                Tok::Eq,
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge
            ]
        );
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(
            toks("42 -7 0.6 -1.5"),
            vec![Tok::Int(42), Tok::Int(-7), Tok::Real(0.6), Tok::Real(-1.5)]
        );
    }

    #[test]
    fn strings_with_escaped_quotes() {
        assert_eq!(toks("'WWW'"), vec![Tok::Str("WWW".into())]);
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn paper_query_lexes() {
        let q =
            "ACCESS p, p -> length() FROM p IN PARA WHERE p -> getIRSValue (collPara, 'WWW') > 0.6";
        let ts = toks(q);
        assert!(ts.contains(&Tok::Ident("getIRSValue".into())));
        assert!(ts.contains(&Tok::Str("WWW".into())));
        assert!(ts.contains(&Tok::Real(0.6)));
    }

    #[test]
    fn offsets_point_at_tokens() {
        let sp = lex("a  ->").unwrap();
        assert_eq!(sp[0].offset, 0);
        assert_eq!(sp[1].offset, 3);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("'Straße'"), vec![Tok::Str("Straße".into())]);
    }

    #[test]
    fn unicode_identifiers_lex_whole_chars() {
        // Regression: byte-wise scanning used to slice mid-codepoint.
        assert_eq!(toks("Straße"), vec![Tok::Ident("Straße".into())]);
        assert_eq!(
            toks("日本語 x"),
            vec![Tok::Ident("日本語".into()), Tok::Ident("x".into())]
        );
        // Non-identifier unicode is a clean error, not a panic.
        assert!(lex("🛨").is_err());
        // Unicode whitespace (em-space) is skipped.
        assert_eq!(
            toks("a\u{2003}b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }
}
