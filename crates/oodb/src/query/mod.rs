//! The VQL-like query language.
//!
//! "As the query syntax of VODAK is very similar to SQL, we do not
//! describe it in detail" (paper, Section 4.4). The concrete grammar here
//! covers everything the paper's example queries use:
//!
//! ```text
//! ACCESS p, p -> length()
//! FROM p IN PARA
//! WHERE p -> getIRSValue(collPara, 'WWW') > 0.6
//! ```
//!
//! * `ACCESS` — projection expressions (variables, literals, method calls);
//! * `FROM v IN Class` — variables range over class extents including
//!   subclasses;
//! * `WHERE` — boolean combinations (`AND`, `OR`, `NOT`) of comparisons
//!   (`=`/`==`, `!=`/`<>`, `<`, `<=`, `>`, `>=`) over expressions;
//! * method calls `v -> name(args)` dispatch through the database's
//!   [`crate::MethodRegistry`], with chaining (`v -> getParent() ->
//!   length()`).
//!
//! Queries are optimized before execution: conjuncts are classified by
//! referenced variables and method cost, index access paths replace full
//! extent scans where possible, and expensive (external-system) methods
//! are evaluated last — the paper's Section 4.5.4 prerequisite.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{CmpOp, Expr, Query};
pub use exec::{run, run_explain, Row};
pub use parser::parse;
pub use plan::{plan, Access, Plan, Step};
