//! Query AST.

use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` / `==`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Mirror of the operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Aggregate functions usable in the ACCESS list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of result tuples (the argument is evaluated but only
    /// non-NULL values are counted, SQL-style).
    Count,
    /// Sum of numeric values.
    Sum,
    /// Mean of numeric values.
    Avg,
    /// Minimum by the value total order.
    Min,
    /// Maximum by the value total order.
    Max,
}

impl AggFunc {
    /// Parse a (case-insensitive) function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// A FROM-bound variable.
    Var(String),
    /// `recv -> method(args)`.
    MethodCall {
        /// Receiver expression (must evaluate to an OID).
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left side.
        lhs: Box<Expr>,
        /// Right side.
        rhs: Box<Expr>,
    },
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Aggregate over all result tuples — ACCESS list only.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Per-tuple argument expression.
        arg: Box<Expr>,
    },
}

impl Expr {
    /// Collect the FROM variables referenced anywhere in the expression.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Var(v) => {
                if !out.contains(&v.as_str()) {
                    out.push(v);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.collect_vars(out);
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            Expr::Not(e) => e.collect_vars(out),
            Expr::Aggregate { arg, .. } => arg.collect_vars(out),
        }
    }

    /// True if the expression contains an aggregate anywhere.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Var(_) => false,
            Expr::MethodCall { recv, args, .. } => {
                recv.has_aggregate() || args.iter().any(Expr::has_aggregate)
            }
            Expr::Cmp { lhs, rhs, .. } => lhs.has_aggregate() || rhs.has_aggregate(),
            Expr::And(es) | Expr::Or(es) => es.iter().any(Expr::has_aggregate),
            Expr::Not(e) => e.has_aggregate(),
        }
    }

    /// Collect the names of every method called in the expression.
    pub fn methods(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_methods(&mut out);
        out
    }

    fn collect_methods<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal(_) | Expr::Var(_) => {}
            Expr::MethodCall { recv, method, args } => {
                out.push(method);
                recv.collect_methods(out);
                for a in args {
                    a.collect_methods(out);
                }
            }
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.collect_methods(out);
                rhs.collect_methods(out);
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_methods(out);
                }
            }
            Expr::Not(e) => e.collect_methods(out),
            Expr::Aggregate { arg, .. } => arg.collect_methods(out),
        }
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projection expressions (the ACCESS list).
    pub select: Vec<Expr>,
    /// `(variable, class)` bindings in source order.
    pub from: Vec<(String, String)>,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
    /// Optional `ORDER BY expr` with direction (`true` = descending).
    pub order_by: Option<(Expr, bool)>,
    /// Optional `LIMIT n`.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_are_collected_once() {
        let e = Expr::And(vec![
            Expr::Var("p".into()),
            Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::Var("p".into())),
                rhs: Box::new(Expr::Var("d".into())),
            },
        ]);
        assert_eq!(e.vars(), vec!["p", "d"]);
    }

    #[test]
    fn methods_collected_recursively() {
        let e = Expr::MethodCall {
            recv: Box::new(Expr::MethodCall {
                recv: Box::new(Expr::Var("p".into())),
                method: "getParent".into(),
                args: vec![],
            }),
            method: "length".into(),
            args: vec![],
        };
        assert_eq!(e.methods(), vec!["length", "getParent"]);
    }

    #[test]
    fn flipped_ops() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }
}
