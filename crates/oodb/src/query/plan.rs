//! Query planning and optimization.
//!
//! Three optimizations, all taken from the paper's discussion:
//!
//! 1. **Index access paths** — a conjunct of the form
//!    `v -> getAttributeValue('A') = literal` (or a range comparison)
//!    turns a full extent scan into an index lookup when `(class, A)` —
//!    or an ancestor class — is indexed.
//! 2. **Join ordering** — FROM bindings are reordered by estimated
//!    candidate count (index-restricted count, else extent size).
//! 3. **Expensive-method placement** — conjuncts are attached to the
//!    earliest step whose variables they cover, and within a step sorted
//!    cheap-first, so methods registered [`MethodCost::Expensive`] (the
//!    IRS calls of the coupling) run only on tuples that survived every
//!    cheap predicate. This is the "method-based query-optimization
//!    features [AbF95]" prerequisite of the paper's Section 4.5.4.

use crate::database::Database;
use crate::error::{DbError, Result};
use crate::method::MethodCost;
use crate::query::ast::{CmpOp, Expr, Query};
use crate::schema::ClassId;
use crate::value::Value;

/// How a step obtains its candidate OIDs.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Scan the class extent (subclasses included).
    Extent,
    /// Equality index lookup on `attr` of the given (ancestor) class.
    IndexEq {
        /// The class that owns the index (the binding class or an
        /// ancestor).
        indexed_class: ClassId,
        /// Indexed attribute.
        attr: String,
        /// Comparand.
        value: Value,
    },
    /// Ordered-index range lookup (inclusive bounds; `None` = unbounded).
    IndexRange {
        /// The class that owns the index.
        indexed_class: ClassId,
        /// Indexed attribute.
        attr: String,
        /// Lower bound.
        lo: Option<Value>,
        /// Upper bound.
        hi: Option<Value>,
    },
}

/// One join step: bind `var` to candidates of `class`, keep tuples
/// passing `filters`.
#[derive(Debug, Clone)]
pub struct Step {
    /// Variable name.
    pub var: String,
    /// Binding class.
    pub class: ClassId,
    /// Candidate source.
    pub access: Access,
    /// Conjuncts fully bound once this variable is bound, cheap first.
    pub filters: Vec<Expr>,
    /// Estimated candidates (what the optimizer believed).
    pub estimate: usize,
}

/// An executable plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Join steps in execution order.
    pub steps: Vec<Step>,
    /// Projection expressions.
    pub select: Vec<Expr>,
    /// Result ordering (`true` = descending).
    pub order_by: Option<(Expr, bool)>,
    /// Result cap.
    pub limit: Option<usize>,
}

impl Plan {
    /// Human-readable plan, used by `query_explain` and the E5 experiment.
    pub fn describe(&self, db: &Database) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            let access = match &s.access {
                Access::Extent => "extent scan".to_string(),
                Access::IndexEq { attr, value, .. } => format!("index eq({attr} = {value})"),
                Access::IndexRange { attr, lo, hi, .. } => format!(
                    "index range({} in [{}, {}])",
                    attr,
                    lo.as_ref().map_or("-inf".into(), Value::to_string),
                    hi.as_ref().map_or("+inf".into(), Value::to_string),
                ),
            };
            let expensive = s
                .filters
                .iter()
                .filter(|f| expr_cost(db, f) >= EXPENSIVE_COST)
                .count();
            let _ = writeln!(
                out,
                "step {}: {} IN {} via {} (est {}), {} filters ({} expensive, evaluated last)",
                i + 1,
                s.var,
                db.schema().name(s.class),
                access,
                s.estimate,
                s.filters.len(),
                expensive,
            );
        }
        out
    }
}

const EXPENSIVE_COST: u64 = 1_000;

/// Optimizer cost of evaluating `e` once: 1 per cheap method call,
/// [`EXPENSIVE_COST`] per expensive one. Unregistered methods count as
/// cheap (they will error at run time anyway).
pub fn expr_cost(db: &Database, e: &Expr) -> u64 {
    e.methods()
        .iter()
        .map(|m| match db.methods().cost(m) {
            Some(MethodCost::Expensive) => EXPENSIVE_COST,
            _ => 1,
        })
        .sum()
}

/// Flatten nested conjunctions into a conjunct list.
fn conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(terms) => {
            for t in terms {
                conjuncts(t, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// If `e` is `var -> getAttributeValue('A') <op> literal` (either side),
/// return `(var, attr, op, literal)`.
fn attr_cmp(e: &Expr) -> Option<(String, String, CmpOp, Value)> {
    let Expr::Cmp { op, lhs, rhs } = e else {
        return None;
    };
    fn decode(side: &Expr) -> Option<(String, String)> {
        let Expr::MethodCall { recv, method, args } = side else {
            return None;
        };
        if method != "getAttributeValue" || args.len() != 1 {
            return None;
        }
        let Expr::Var(v) = recv.as_ref() else {
            return None;
        };
        let Expr::Literal(Value::Str(attr)) = &args[0] else {
            return None;
        };
        Some((v.clone(), attr.clone()))
    }
    if let Some((v, a)) = decode(lhs) {
        if let Expr::Literal(lit) = rhs.as_ref() {
            return Some((v, a, *op, lit.clone()));
        }
    }
    if let Some((v, a)) = decode(rhs) {
        if let Expr::Literal(lit) = lhs.as_ref() {
            return Some((v, a, op.flipped(), lit.clone()));
        }
    }
    None
}

/// Walk up the class hierarchy to find which class (if any) carries an
/// index on `attr`.
fn find_indexed_class(db: &Database, class: ClassId, attr: &str, ordered: bool) -> Option<ClassId> {
    let mut cur = Some(class);
    while let Some(c) = cur {
        let hit = if ordered {
            db.indexes().has_ordered_index(c, attr)
        } else {
            db.indexes().has_index(c, attr)
        };
        if hit {
            return Some(c);
        }
        cur = db.schema().class(c).parent;
    }
    None
}

/// Build a plan for `q` against `db`.
pub fn plan(db: &Database, q: &Query) -> Result<Plan> {
    // Resolve classes and detect duplicate variables.
    let mut bindings: Vec<(String, ClassId)> = Vec::with_capacity(q.from.len());
    for (var, class) in &q.from {
        if bindings.iter().any(|(v, _)| v == var) {
            return Err(DbError::QueryEval(format!("duplicate variable {var}")));
        }
        bindings.push((var.clone(), db.schema().class_id(class)?));
    }

    let mut all_conjuncts = Vec::new();
    if let Some(w) = &q.where_clause {
        conjuncts(w, &mut all_conjuncts);
    }

    // Pick the best access path per binding.
    struct Candidate {
        var: String,
        class: ClassId,
        access: Access,
        estimate: usize,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for (var, class) in &bindings {
        let mut best_access = Access::Extent;
        let mut best_estimate = db.extent(*class, true).len();
        for c in &all_conjuncts {
            let Some((v, attr, op, lit)) = attr_cmp(c) else {
                continue;
            };
            if &v != var {
                continue;
            }
            match op {
                CmpOp::Eq => {
                    if let Some(owner) = find_indexed_class(db, *class, &attr, false) {
                        let n = db
                            .indexes()
                            .lookup_eq(owner, &attr, &lit)
                            .map_or(usize::MAX, |v| v.len());
                        if n < best_estimate {
                            best_estimate = n;
                            best_access = Access::IndexEq {
                                indexed_class: owner,
                                attr,
                                value: lit,
                            };
                        }
                    }
                }
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    if let Some(owner) = find_indexed_class(db, *class, &attr, true) {
                        let (lo, hi) = match op {
                            CmpOp::Gt | CmpOp::Ge => (Some(lit), None),
                            _ => (None, Some(lit)),
                        };
                        let n = db
                            .indexes()
                            .lookup_range_opt(owner, &attr, lo.as_ref(), hi.as_ref())
                            .map_or(usize::MAX, |v| v.len());
                        if n < best_estimate {
                            best_estimate = n;
                            best_access = Access::IndexRange {
                                indexed_class: owner,
                                attr,
                                lo,
                                hi,
                            };
                        }
                    }
                }
                CmpOp::Ne => {}
            }
        }
        candidates.push(Candidate {
            var: var.clone(),
            class: *class,
            access: best_access,
            estimate: best_estimate,
        });
    }

    // Join order: smallest candidate set first (stable for ties).
    candidates.sort_by_key(|c| c.estimate);

    // Attach each conjunct to the earliest step binding all its vars.
    let mut steps: Vec<Step> = candidates
        .into_iter()
        .map(|c| Step {
            var: c.var,
            class: c.class,
            access: c.access,
            filters: Vec::new(),
            estimate: c.estimate,
        })
        .collect();
    for conj in all_conjuncts {
        let vars = conj.vars();
        // Index of the last step among the conjunct's variables.
        // Identifiers bound as database constants need no step.
        let mut target: Option<usize> = None;
        for v in &vars {
            match steps.iter().position(|s| s.var == *v) {
                Some(i) => target = Some(target.map_or(i, |t: usize| t.max(i))),
                None if db.constant(v).is_some() => {}
                None => {
                    return Err(DbError::QueryEval(format!("unbound variable {v}")));
                }
            }
        }
        // Variable-free conjuncts evaluate at the first step.
        let idx = target.unwrap_or(0);
        steps[idx].filters.push(conj);
    }

    // Cheap predicates first within each step.
    for s in &mut steps {
        s.filters.sort_by_key(|f| expr_cost(db, f));
    }

    // ORDER BY expressions may only use FROM variables and constants.
    if let Some((e, _)) = &q.order_by {
        for v in e.vars() {
            if !steps.iter().any(|s| s.var == v) && db.constant(v).is_none() {
                return Err(DbError::QueryEval(format!(
                    "unbound variable {v} in ORDER BY"
                )));
            }
        }
    }

    Ok(Plan {
        steps,
        select: q.select.clone(),
        order_by: q.order_by.clone(),
        limit: q.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::index::IndexKind;
    use crate::method::MethodCost;
    use crate::oid::Oid;
    use crate::query::parser::parse;

    /// 100 objects of class A (year 0..10), 4 of class B.
    fn db() -> Database {
        let mut db = Database::in_memory();
        db.define_class("A", None).unwrap();
        db.define_class("B", None).unwrap();
        let a = db.schema().class_id("A").unwrap();
        let b = db.schema().class_id("B").unwrap();
        let mut txn = db.begin();
        for i in 0..100i64 {
            let oid = db.create_object(&mut txn, a).unwrap();
            db.set_attr(&mut txn, oid, "year", Value::Int(i % 10))
                .unwrap();
        }
        for _ in 0..4 {
            db.create_object(&mut txn, b).unwrap();
        }
        db.commit(txn).unwrap();
        db
    }

    fn plan_for(db: &Database, q: &str) -> Plan {
        plan(db, &parse(q).unwrap()).unwrap()
    }

    #[test]
    fn join_order_prefers_smaller_extent() {
        let db = db();
        let p = plan_for(&db, "ACCESS x, y FROM x IN A, y IN B WHERE x == y");
        assert_eq!(p.steps[0].var, "y", "B (4 objects) binds first");
        assert_eq!(p.steps[0].estimate, 4);
        assert_eq!(p.steps[1].var, "x");
    }

    #[test]
    fn index_beats_extent_scan_when_selective() {
        let mut db = db();
        db.create_index("A", "year", IndexKind::BTree).unwrap();
        let p = plan_for(
            &db,
            "ACCESS x FROM x IN A WHERE x -> getAttributeValue('year') = 3",
        );
        assert!(
            matches!(p.steps[0].access, Access::IndexEq { .. }),
            "{:?}",
            p.steps[0].access
        );
        assert_eq!(p.steps[0].estimate, 10);
    }

    #[test]
    fn equality_index_preferred_over_range() {
        let mut db = db();
        db.create_index("A", "year", IndexKind::BTree).unwrap();
        // Both an equality (10 candidates) and a range (>= 5 → 50)
        // predicate exist; the planner picks the tighter one.
        let p = plan_for(
            &db,
            "ACCESS x FROM x IN A WHERE \
             x -> getAttributeValue('year') = 3 AND x -> getAttributeValue('year') >= 0",
        );
        match &p.steps[0].access {
            Access::IndexEq { value, .. } => assert_eq!(value, &Value::Int(3)),
            other => panic!("expected IndexEq, got {other:?}"),
        }
    }

    #[test]
    fn flipped_comparison_still_uses_index() {
        let mut db = db();
        db.create_index("A", "year", IndexKind::Hash).unwrap();
        let p = plan_for(
            &db,
            "ACCESS x FROM x IN A WHERE 3 = x -> getAttributeValue('year')",
        );
        assert!(matches!(p.steps[0].access, Access::IndexEq { .. }));
    }

    #[test]
    fn conjuncts_attach_to_latest_variable() {
        let db = db();
        let p = plan_for(
            &db,
            "ACCESS x, y FROM x IN B, y IN B WHERE \
             x -> getClassName() = 'B' AND x == y",
        );
        // The single-variable conjunct sits on x's step; the join
        // conjunct on whichever binds later.
        let x_step = p.steps.iter().position(|s| s.var == "x").unwrap();
        let y_step = p.steps.iter().position(|s| s.var == "y").unwrap();
        let later = x_step.max(y_step);
        assert!(p.steps[later].filters.iter().any(|f| f.vars().len() == 2));
        assert!(p.steps[x_step]
            .filters
            .iter()
            .any(|f| f.vars() == vec!["x"]));
    }

    #[test]
    fn expensive_filters_sort_last_within_a_step() {
        let mut db = db();
        db.methods_mut()
            .register("slow", MethodCost::Expensive, |_, _, _| {
                Ok(Value::Bool(true))
            });
        let p = plan_for(
            &db,
            "ACCESS x FROM x IN A WHERE \
             x -> slow() = TRUE AND x -> getAttributeValue('year') = 1 AND \
             x -> getClassName() = 'A'",
        );
        let costs: Vec<u64> = p.steps[0]
            .filters
            .iter()
            .map(|f| expr_cost(&db, f))
            .collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
        assert!(*costs.last().unwrap() >= 1_000);
    }

    #[test]
    fn describe_mentions_access_paths() {
        let mut db = db();
        db.create_index("A", "year", IndexKind::BTree).unwrap();
        let p = plan_for(
            &db,
            "ACCESS x FROM x IN A WHERE x -> getAttributeValue('year') >= 8",
        );
        let desc = p.describe(&db);
        assert!(desc.contains("index range"), "{desc}");
        let _ = Oid(0); // silence unused import on some cfgs
    }
}
