//! Recursive-descent parser for VQL.

use crate::error::{DbError, Result};
use crate::query::ast::{CmpOp, Expr, Query};
use crate::query::lexer::{lex, Spanned, Tok};
use crate::value::Value;

/// Parse a VQL query string.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn err(&self, reason: &str) -> DbError {
        let offset = self
            .tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(self.input_len);
        DbError::QueryParse {
            reason: reason.to_string(),
            offset,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos)?.tok.clone();
        self.pos += 1;
        Some(t)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(&format!("expected {what}")))
            }
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect(&Tok::Access, "ACCESS")?;
        let mut select = vec![self.expr()?];
        while self.eat(&Tok::Comma) {
            select.push(self.expr()?);
        }
        self.expect(&Tok::From, "FROM")?;
        let mut from = vec![self.binding()?];
        while self.eat(&Tok::Comma) {
            from.push(self.binding()?);
        }
        let where_clause = if self.eat(&Tok::Where) {
            Some(self.pred()?)
        } else {
            None
        };
        let order_by = if self.eat(&Tok::Order) {
            self.expect(&Tok::By, "BY after ORDER")?;
            let e = self.expr()?;
            let desc = if self.eat(&Tok::Desc) {
                true
            } else {
                self.eat(&Tok::Asc);
                false
            };
            Some((e, desc))
        } else {
            None
        };
        let limit = if self.eat(&Tok::Limit) {
            match self.bump() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("LIMIT requires a non-negative integer"));
                }
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_clause,
            order_by,
            limit,
        })
    }

    fn binding(&mut self) -> Result<(String, String)> {
        let var = self.ident("a variable name")?;
        self.expect(&Tok::In, "IN")?;
        let class = self.ident("a class name")?;
        Ok((var, class))
    }

    /// pred := and_pred (OR and_pred)*
    fn pred(&mut self) -> Result<Expr> {
        let mut terms = vec![self.and_pred()?];
        while self.eat(&Tok::Or) {
            terms.push(self.and_pred()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("len checked")
        } else {
            Expr::Or(terms)
        })
    }

    /// and_pred := not_pred (AND not_pred)*
    fn and_pred(&mut self) -> Result<Expr> {
        let mut terms = vec![self.not_pred()?];
        while self.eat(&Tok::And) {
            terms.push(self.not_pred()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("len checked")
        } else {
            Expr::And(terms)
        })
    }

    /// not_pred := NOT not_pred | comparison
    fn not_pred(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Not) {
            Ok(Expr::Not(Box::new(self.not_pred()?)))
        } else {
            self.comparison()
        }
    }

    /// comparison := expr (cmpop expr)?
    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.expr()?;
        Ok(Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    /// expr := primary ( '->' ident '(' args ')' )*
    fn expr(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.eat(&Tok::Arrow) {
            let method = self.ident("a method name")?;
            self.expect(&Tok::LParen, "'(' after method name")?;
            let mut args = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                args.push(self.expr()?);
                while self.eat(&Tok::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect(&Tok::RParen, "')'")?;
            e = Expr::MethodCall {
                recv: Box::new(e),
                method,
                args,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.pred()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                // `NAME(expr)` is an aggregate call (COUNT/SUM/AVG/MIN/MAX).
                if self.peek() == Some(&Tok::LParen) {
                    let Some(func) = crate::query::ast::AggFunc::from_name(&name) else {
                        return Err(self.err(&format!("unknown aggregate function {name}")));
                    };
                    self.pos += 1;
                    let arg = self.expr()?;
                    self.expect(&Tok::RParen, "')' after aggregate argument")?;
                    return Ok(Expr::Aggregate {
                        func,
                        arg: Box::new(arg),
                    });
                }
                Ok(Expr::Var(name))
            }
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Tok::Real(r)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Real(r)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Tok::Null) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(Tok::True) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Some(Tok::False) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(false)))
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse("ACCESS p FROM p IN PARA").unwrap();
        assert_eq!(q.select, vec![Expr::Var("p".into())]);
        assert_eq!(q.from, vec![("p".into(), "PARA".into())]);
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn paper_first_example_parses() {
        // Section 4.4, first example query.
        let q = parse(
            "ACCESS p, p -> length() FROM p IN PARA \
             WHERE p -> getIRSValue (collPara, 'WWW') > 0.6",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        match &q.where_clause {
            Some(Expr::Cmp {
                op: CmpOp::Gt,
                lhs,
                rhs,
            }) => {
                assert!(matches!(**lhs, Expr::MethodCall { .. }));
                assert_eq!(**rhs, Expr::Literal(Value::Real(0.6)));
            }
            other => panic!("unexpected where: {other:?}"),
        }
    }

    #[test]
    fn paper_second_example_parses() {
        // Section 4.4, second example query (multi-variable join).
        let q = parse(
            "ACCESS d -> getAttributeValue ('TITLE') \
             FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA \
             WHERE d -> getAttributeValue ('YEAR') = '1994' AND \
             p1 -> getNext() == p2 AND \
             p1 -> getContaining ('MMFDOC') == d AND \
             p1 -> getIRSValue (collPara, 'WWW') > 0.4 AND \
             p2 -> getIRSValue (collPara, 'NII') > 0.4",
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
        match &q.where_clause {
            Some(Expr::And(terms)) => assert_eq!(terms.len(), 5),
            other => panic!("unexpected where: {other:?}"),
        }
    }

    #[test]
    fn method_chaining() {
        let q = parse("ACCESS p -> getParent() -> length() FROM p IN PARA").unwrap();
        match &q.select[0] {
            Expr::MethodCall { recv, method, .. } => {
                assert_eq!(method, "length");
                assert!(matches!(**recv, Expr::MethodCall { .. }));
            }
            other => panic!("unexpected select: {other:?}"),
        }
    }

    #[test]
    fn boolean_precedence_and_binds_tighter_than_or() {
        let q = parse("ACCESS p FROM p IN A WHERE p = 1 OR p = 2 AND p = 3").unwrap();
        match q.where_clause.unwrap() {
            Expr::Or(terms) => {
                assert_eq!(terms.len(), 2);
                assert!(matches!(terms[1], Expr::And(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn not_and_parentheses() {
        let q = parse("ACCESS p FROM p IN A WHERE NOT (p = 1 OR p = 2)").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Expr::Not(_)));
    }

    #[test]
    fn null_and_boolean_literals() {
        let q = parse("ACCESS p FROM p IN A WHERE p -> getParent() != NULL AND TRUE").unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn errors_are_parse_errors() {
        for bad in [
            "",
            "ACCESS",
            "ACCESS p",
            "ACCESS p FROM",
            "ACCESS p FROM p",
            "ACCESS p FROM p IN",
            "ACCESS p FROM p IN A WHERE",
            "ACCESS p FROM p IN A trailing",
            "ACCESS p -> m( FROM p IN A",
        ] {
            assert!(
                matches!(parse(bad), Err(DbError::QueryParse { .. })),
                "{bad:?} should fail"
            );
        }
    }
}
