//! Plan execution: nested-loop binding with predicate evaluation.

use std::collections::HashMap;

use crate::database::Database;
use crate::error::{DbError, Result};
use crate::oid::Oid;
use crate::query::ast::{CmpOp, Expr};
use crate::query::parser::parse;
use crate::query::plan::{plan, Access, Plan};
use crate::value::Value;

/// One result row: the evaluated ACCESS expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// First column as an OID, the common case for `ACCESS v FROM …`.
    pub fn oid(&self) -> Option<Oid> {
        self.0.first().and_then(Value::as_oid)
    }

    /// Column `i`.
    pub fn col(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

/// Variable bindings during execution.
type Env = HashMap<String, Oid>;

/// Parse, plan and execute `text`.
pub fn run(db: &Database, text: &str) -> Result<Vec<Row>> {
    let q = parse(text)?;
    let p = plan(db, &q)?;
    execute(db, &p)
}

/// Like [`run`] but also returns the plan description.
pub fn run_explain(db: &Database, text: &str) -> Result<(Vec<Row>, String)> {
    let q = parse(text)?;
    let p = plan(db, &q)?;
    let desc = p.describe(db);
    Ok((execute(db, &p)?, desc))
}

/// Plan `text` and describe it without executing (the `EXPLAIN` path).
pub fn explain_only(db: &Database, text: &str) -> Result<String> {
    let q = parse(text)?;
    let p = plan(db, &q)?;
    Ok(p.describe(db))
}

/// Execute a prepared plan.
pub fn execute(db: &Database, p: &Plan) -> Result<Vec<Row>> {
    // Aggregate queries collapse all tuples into one row.
    let any_agg = p.select.iter().any(Expr::has_aggregate);
    if any_agg {
        if !p.select.iter().all(Expr::has_aggregate) {
            return Err(DbError::QueryEval(
                "cannot mix aggregate and per-tuple ACCESS expressions".into(),
            ));
        }
        if p.order_by.is_some() {
            return Err(DbError::QueryEval(
                "ORDER BY is meaningless with aggregates".into(),
            ));
        }
        return execute_aggregates(db, p);
    }
    let mut rows = Vec::new();
    let mut env = Env::new();
    bind_step(db, p, 0, &mut env, &mut rows)?;
    if let Some((_, desc)) = &p.order_by {
        // Sort keys were computed per row in bind_step.
        rows.sort_by(|a, b| {
            let ord = a.0.total_cmp(&b.0);
            if *desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(limit) = p.limit {
        rows.truncate(limit);
    }
    Ok(rows.into_iter().map(|(_, row)| row).collect())
}

/// Run the binding loop collecting per-tuple aggregate arguments, then
/// fold them.
fn execute_aggregates(db: &Database, p: &Plan) -> Result<Vec<Row>> {
    // Collect the distinct aggregate nodes per select position.
    let mut per_tuple: Vec<Vec<Value>> = vec![Vec::new(); p.select.len()];
    let mut env = Env::new();
    collect_agg_tuples(db, p, 0, &mut env, &mut per_tuple)?;
    let mut cols = Vec::with_capacity(p.select.len());
    for (i, sel) in p.select.iter().enumerate() {
        let Expr::Aggregate { func, .. } = sel else {
            return Err(DbError::QueryEval(
                "aggregates cannot be nested inside other expressions".into(),
            ));
        };
        cols.push(fold_aggregate(*func, &per_tuple[i]));
    }
    Ok(vec![Row(cols)])
}

fn collect_agg_tuples(
    db: &Database,
    p: &Plan,
    depth: usize,
    env: &mut Env,
    per_tuple: &mut [Vec<Value>],
) -> Result<()> {
    if depth == p.steps.len() {
        for (i, sel) in p.select.iter().enumerate() {
            if let Expr::Aggregate { arg, .. } = sel {
                per_tuple[i].push(eval(db, env, arg)?);
            }
        }
        return Ok(());
    }
    let step = &p.steps[depth];
    for oid in step_candidates(db, step) {
        match db.object(oid) {
            Ok(obj) if db.schema().is_subclass(obj.class, step.class) => {}
            _ => continue,
        }
        env.insert(step.var.clone(), oid);
        let mut pass = true;
        for f in &step.filters {
            if !eval(db, env, f)?.truthy() {
                pass = false;
                break;
            }
        }
        if pass {
            collect_agg_tuples(db, p, depth + 1, env, per_tuple)?;
        }
    }
    env.remove(&step.var);
    Ok(())
}

fn fold_aggregate(func: crate::query::ast::AggFunc, values: &[Value]) -> Value {
    use crate::query::ast::AggFunc;
    let non_null: Vec<&Value> = values
        .iter()
        .filter(|v| !matches!(v, Value::Null))
        .collect();
    match func {
        AggFunc::Count => Value::Int(non_null.len() as i64),
        AggFunc::Sum => Value::Real(non_null.iter().filter_map(|v| v.as_f64()).sum()),
        AggFunc::Avg => {
            let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Real(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min => non_null
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFunc::Max => non_null
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
    }
}

/// Candidate OIDs of one step (shared by the row and aggregate paths).
fn step_candidates(db: &Database, step: &crate::query::plan::Step) -> Vec<Oid> {
    match &step.access {
        Access::Extent => db.extent(step.class, true),
        Access::IndexEq {
            indexed_class,
            attr,
            value,
        } => db
            .indexes()
            .lookup_eq(*indexed_class, attr, value)
            .unwrap_or_default(),
        Access::IndexRange {
            indexed_class,
            attr,
            lo,
            hi,
        } => db
            .indexes()
            .lookup_range_opt(*indexed_class, attr, lo.as_ref(), hi.as_ref())
            .unwrap_or_default(),
    }
}

fn bind_step(
    db: &Database,
    p: &Plan,
    depth: usize,
    env: &mut Env,
    rows: &mut Vec<(Value, Row)>,
) -> Result<()> {
    if depth == p.steps.len() {
        let mut cols = Vec::with_capacity(p.select.len());
        for e in &p.select {
            cols.push(eval(db, env, e)?);
        }
        let key = match &p.order_by {
            Some((e, _)) => eval(db, env, e)?,
            None => Value::Null,
        };
        rows.push((key, Row(cols)));
        return Ok(());
    }
    let step = &p.steps[depth];
    'cand: for oid in step_candidates(db, step) {
        // Index lookups on an ancestor class may return objects outside
        // this binding's class: re-check membership.
        match db.object(oid) {
            Ok(obj) => {
                if !db.schema().is_subclass(obj.class, step.class) {
                    continue;
                }
            }
            Err(_) => continue,
        }
        env.insert(step.var.clone(), oid);
        for f in &step.filters {
            if !eval(db, env, f)?.truthy() {
                continue 'cand;
            }
        }
        bind_step(db, p, depth + 1, env, rows)?;
    }
    env.remove(&step.var);
    Ok(())
}

/// Evaluate an expression under `env`.
pub fn eval(db: &Database, env: &Env, e: &Expr) -> Result<Value> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Var(name) => env
            .get(name)
            .map(|&oid| Value::Oid(oid))
            .or_else(|| db.constant(name).cloned())
            .ok_or_else(|| DbError::QueryEval(format!("unbound variable {name}"))),
        Expr::MethodCall { recv, method, args } => {
            let recv_val = eval(db, env, recv)?;
            // Method call on NULL propagates NULL (optional navigation).
            let Some(oid) = recv_val.as_oid() else {
                return if matches!(recv_val, Value::Null) {
                    Ok(Value::Null)
                } else {
                    Err(DbError::QueryEval(format!(
                        "method {method} called on non-object {recv_val}"
                    )))
                };
            };
            let mut arg_vals = Vec::with_capacity(args.len());
            for a in args {
                arg_vals.push(eval(db, env, a)?);
            }
            db.methods()
                .invoke(&db.method_ctx(), method, oid, &arg_vals)
        }
        Expr::Cmp { op, lhs, rhs } => {
            let l = eval(db, env, lhs)?;
            let r = eval(db, env, rhs)?;
            Ok(Value::Bool(compare(*op, &l, &r)))
        }
        Expr::And(terms) => {
            for t in terms {
                if !eval(db, env, t)?.truthy() {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        Expr::Or(terms) => {
            for t in terms {
                if eval(db, env, t)?.truthy() {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        Expr::Not(t) => Ok(Value::Bool(!eval(db, env, t)?.truthy())),
        Expr::Aggregate { .. } => Err(DbError::QueryEval(
            "aggregates are only allowed at the top of the ACCESS list".into(),
        )),
    }
}

/// Comparison semantics: `=`/`!=` use loose equality (numeric coercion);
/// ordering requires both sides numeric, both strings, or both OIDs —
/// anything else (including NULL) compares false.
fn compare(op: CmpOp, l: &Value, r: &Value) -> bool {
    match op {
        CmpOp::Eq => l.loose_eq(r),
        CmpOp::Ne => !l.loose_eq(r),
        _ => {
            let ord = match (l, r) {
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                (Value::Oid(a), Value::Oid(b)) => a.cmp(b),
                _ => match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => match a.partial_cmp(&b) {
                        Some(o) => o,
                        None => return false, // NaN
                    },
                    _ => return false,
                },
            };
            matches!(
                (op, ord),
                (CmpOp::Lt, std::cmp::Ordering::Less)
                    | (
                        CmpOp::Le,
                        std::cmp::Ordering::Less | std::cmp::Ordering::Equal
                    )
                    | (CmpOp::Gt, std::cmp::Ordering::Greater)
                    | (
                        CmpOp::Ge,
                        std::cmp::Ordering::Greater | std::cmp::Ordering::Equal
                    )
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::method::MethodCost;

    /// A small document base: two MMFDOCs each with two PARAs.
    fn doc_db() -> (Database, Vec<Oid>) {
        let mut db = Database::in_memory();
        db.define_class("IRSObject", None).unwrap();
        let doc = db.define_class("MMFDOC", Some("IRSObject")).unwrap();
        let para = db.define_class("PARA", Some("IRSObject")).unwrap();
        let mut oids = Vec::new();
        let mut txn = db.begin();
        for (year, texts) in [
            ("1994", ["telnet protocol", "www growth"]),
            ("1995", ["nii plans", "www and nii"]),
        ] {
            let d = db.create_object(&mut txn, doc).unwrap();
            db.set_attr(&mut txn, d, "YEAR", Value::from(year)).unwrap();
            db.set_attr(&mut txn, d, "TITLE", Value::from(format!("Issue {year}")))
                .unwrap();
            let mut kids = Vec::new();
            for t in texts {
                let p = db.create_object(&mut txn, para).unwrap();
                db.set_attr(&mut txn, p, "text", Value::from(t)).unwrap();
                db.set_attr(&mut txn, p, "parent", Value::Oid(d)).unwrap();
                kids.push(Value::Oid(p));
                oids.push(p);
            }
            db.set_attr(&mut txn, d, "children", Value::List(kids))
                .unwrap();
            oids.push(d);
        }
        db.commit(txn).unwrap();
        (db, oids)
    }

    #[test]
    fn select_all_of_class() {
        let (db, _) = doc_db();
        let rows = db.query("ACCESS p FROM p IN PARA").unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.oid().is_some()));
    }

    #[test]
    fn superclass_extent_includes_subclasses() {
        let (db, _) = doc_db();
        let rows = db.query("ACCESS o FROM o IN IRSObject").unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn where_on_attribute() {
        let (db, _) = doc_db();
        let rows = db
            .query("ACCESS d -> getAttributeValue('TITLE') FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994'")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].col(0), &Value::from("Issue 1994"));
    }

    #[test]
    fn join_via_navigation() {
        let (db, _) = doc_db();
        // Paragraph pairs that are adjacent siblings.
        let rows = db
            .query("ACCESS p1, p2 FROM p1 IN PARA, p2 IN PARA WHERE p1 -> getNext() == p2")
            .unwrap();
        assert_eq!(rows.len(), 2, "one adjacent pair per document");
    }

    #[test]
    fn containing_document_join() {
        let (db, _) = doc_db();
        let rows = db
            .query(
                "ACCESS d -> getAttributeValue('TITLE') FROM d IN MMFDOC, p IN PARA \
                 WHERE p -> getContaining('MMFDOC') == d AND \
                 d -> getAttributeValue('YEAR') = '1995'",
            )
            .unwrap();
        assert_eq!(rows.len(), 2, "two paragraphs in the 1995 issue");
    }

    #[test]
    fn index_access_path_is_chosen_and_correct() {
        let (mut db, _) = doc_db();
        db.create_index("MMFDOC", "YEAR", IndexKind::Hash).unwrap();
        let (rows, explain) = db
            .query_explain(
                "ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994'",
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(explain.contains("index eq"), "plan was: {explain}");
    }

    #[test]
    fn range_index_access_path() {
        let (mut db, _) = doc_db();
        // Numeric year attribute for range queries.
        let docs: Vec<Oid> = db
            .query("ACCESS d FROM d IN MMFDOC")
            .unwrap()
            .iter()
            .map(|r| r.oid().unwrap())
            .collect();
        let mut txn = db.begin();
        for (i, d) in docs.iter().enumerate() {
            db.set_attr(&mut txn, *d, "num_year", Value::Int(1994 + i as i64))
                .unwrap();
        }
        db.commit(txn).unwrap();
        db.create_index("MMFDOC", "num_year", IndexKind::BTree)
            .unwrap();
        let (rows, explain) = db
            .query_explain(
                "ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('num_year') >= 1995",
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(explain.contains("index range"), "plan was: {explain}");
    }

    #[test]
    fn expensive_methods_are_ordered_last() {
        let (mut db, _) = doc_db();
        db.methods_mut()
            .register("slowPredicate", MethodCost::Expensive, |_, _, _| {
                Ok(Value::Bool(true))
            });
        let (_, explain) = db
            .query_explain(
                "ACCESS p FROM p IN PARA WHERE \
                 p -> slowPredicate() = TRUE AND p -> getAttributeValue('text') != NULL",
            )
            .unwrap();
        assert!(explain.contains("1 expensive"), "plan was: {explain}");
    }

    #[test]
    fn null_navigation_propagates() {
        let (db, _) = doc_db();
        // Documents have no parent; getParent() -> length() must yield NULL
        // rather than erroring, and the comparison is then false.
        let rows = db
            .query("ACCESS d FROM d IN MMFDOC WHERE d -> getParent() -> length() > 0")
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn boolean_connectives() {
        let (db, _) = doc_db();
        let rows = db
            .query(
                "ACCESS d FROM d IN MMFDOC WHERE \
                 d -> getAttributeValue('YEAR') = '1994' OR d -> getAttributeValue('YEAR') = '1995'",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        let rows = db
            .query("ACCESS d FROM d IN MMFDOC WHERE NOT d -> getAttributeValue('YEAR') = '1994'")
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn unknown_class_and_unbound_variable_error() {
        let (db, _) = doc_db();
        assert!(matches!(
            db.query("ACCESS x FROM x IN NOPE"),
            Err(DbError::UnknownClass(_))
        ));
        assert!(matches!(
            db.query("ACCESS y FROM x IN PARA"),
            Err(DbError::QueryEval(_))
        ));
        assert!(matches!(
            db.query("ACCESS x FROM x IN PARA WHERE y = 1"),
            Err(DbError::QueryEval(_))
        ));
        assert!(matches!(
            db.query("ACCESS x FROM x IN PARA, x IN PARA"),
            Err(DbError::QueryEval(_))
        ));
    }

    #[test]
    fn method_on_non_object_errors() {
        let (db, _) = doc_db();
        let err = db.query("ACCESS p FROM p IN PARA WHERE 1 -> length() > 0");
        assert!(matches!(err, Err(DbError::QueryEval(_))));
    }

    #[test]
    fn count_aggregate() {
        let (db, _) = doc_db();
        let rows = db.query("ACCESS COUNT(p) FROM p IN PARA").unwrap();
        assert_eq!(rows, vec![Row(vec![Value::Int(4)])]);
        // COUNT respects WHERE.
        let rows = db
            .query(
                "ACCESS COUNT(p) FROM p IN PARA, d IN MMFDOC WHERE \
                 p -> getContaining('MMFDOC') == d AND d -> getAttributeValue('YEAR') = '1994'",
            )
            .unwrap();
        assert_eq!(rows[0].col(0), &Value::Int(2));
        // COUNT skips NULL arguments (documents have no 'text').
        let rows = db
            .query("ACCESS COUNT(d -> getAttributeValue('text')) FROM d IN MMFDOC")
            .unwrap();
        assert_eq!(rows[0].col(0), &Value::Int(0));
    }

    #[test]
    fn numeric_aggregates() {
        let (db, _) = doc_db();
        let rows = db
            .query("ACCESS MIN(p -> length()), MAX(p -> length()), AVG(p -> length()), SUM(p -> length()) FROM p IN PARA")
            .unwrap();
        let min = rows[0].col(0).as_f64().unwrap();
        let max = rows[0].col(1).as_f64().unwrap();
        let avg = rows[0].col(2).as_f64().unwrap();
        let sum = rows[0].col(3).as_f64().unwrap();
        assert!(min <= avg && avg <= max);
        assert!((sum - avg * 4.0).abs() < 1e-9);
        // Empty result set: COUNT 0, AVG NULL.
        let rows = db
            .query(
                "ACCESS COUNT(p), AVG(p -> length()) FROM p IN PARA \
                 WHERE p -> getAttributeValue('text') = 'absent'",
            )
            .unwrap();
        assert_eq!(rows[0].col(0), &Value::Int(0));
        assert_eq!(rows[0].col(1), &Value::Null);
    }

    #[test]
    fn aggregate_errors() {
        let (db, _) = doc_db();
        assert!(matches!(
            db.query("ACCESS p, COUNT(p) FROM p IN PARA"),
            Err(DbError::QueryEval(_))
        ));
        assert!(matches!(
            db.query("ACCESS COUNT(p) FROM p IN PARA ORDER BY p"),
            Err(DbError::QueryEval(_))
        ));
        assert!(matches!(
            db.query("ACCESS BOGUS(p) FROM p IN PARA"),
            Err(DbError::QueryParse { .. })
        ));
        assert!(matches!(
            db.query("ACCESS p FROM p IN PARA WHERE COUNT(p) > 1"),
            Err(DbError::QueryEval(_))
        ));
    }

    #[test]
    fn order_by_sorts_ascending_and_descending() {
        let (db, _) = doc_db();
        let asc = db
            .query("ACCESS p -> getAttributeValue('text'), p FROM p IN PARA ORDER BY p -> getAttributeValue('text')")
            .unwrap();
        let texts: Vec<&str> = asc.iter().map(|r| r.col(0).as_str().unwrap()).collect();
        let mut sorted = texts.clone();
        sorted.sort();
        assert_eq!(texts, sorted);

        let desc = db
            .query("ACCESS p -> getAttributeValue('text') FROM p IN PARA ORDER BY p -> getAttributeValue('text') DESC")
            .unwrap();
        let desc_texts: Vec<&str> = desc.iter().map(|r| r.col(0).as_str().unwrap()).collect();
        let mut rev = sorted.clone();
        rev.reverse();
        assert_eq!(desc_texts, rev);
    }

    #[test]
    fn limit_caps_results() {
        let (db, _) = doc_db();
        let rows = db.query("ACCESS p FROM p IN PARA LIMIT 2").unwrap();
        assert_eq!(rows.len(), 2);
        let rows = db.query("ACCESS p FROM p IN PARA LIMIT 0").unwrap();
        assert!(rows.is_empty());
        // Larger than the result set: no-op.
        let rows = db.query("ACCESS p FROM p IN PARA LIMIT 100").unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn order_by_with_limit_gives_top_k() {
        let (db, _) = doc_db();
        // Top-1 paragraph by text, descending: "www growth" is the last
        // alphabetically.
        let rows = db
            .query(
                "ACCESS p -> getAttributeValue('text') FROM p IN PARA \
                 ORDER BY p -> getAttributeValue('text') DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].col(0).as_str().unwrap(), "www growth");
    }

    #[test]
    fn order_by_errors() {
        let (db, _) = doc_db();
        assert!(matches!(
            db.query("ACCESS p FROM p IN PARA ORDER BY q -> length()"),
            Err(DbError::QueryEval(_))
        ));
        assert!(matches!(
            db.query("ACCESS p FROM p IN PARA LIMIT -1"),
            Err(DbError::QueryParse { .. })
        ));
        assert!(matches!(
            db.query("ACCESS p FROM p IN PARA ORDER p"),
            Err(DbError::QueryParse { .. })
        ));
    }

    #[test]
    fn compare_semantics() {
        assert!(compare(CmpOp::Eq, &Value::Int(2), &Value::Real(2.0)));
        assert!(compare(CmpOp::Lt, &Value::Int(1), &Value::Real(1.5)));
        assert!(compare(CmpOp::Ge, &Value::from("b"), &Value::from("a")));
        assert!(!compare(CmpOp::Lt, &Value::Null, &Value::Int(1)));
        assert!(!compare(CmpOp::Gt, &Value::from("a"), &Value::Int(1)));
        assert!(compare(CmpOp::Eq, &Value::Null, &Value::Null));
        assert!(compare(CmpOp::Ne, &Value::Null, &Value::Int(0)));
        assert!(!compare(
            CmpOp::Lt,
            &Value::Real(f64::NAN),
            &Value::Real(1.0)
        ));
    }
}
