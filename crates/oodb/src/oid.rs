//! Object identity.

use std::fmt;

/// An object identifier — stable for the lifetime of the database,
/// never reused after deletion (the paper's coupling stores OIDs as IRS
/// document metadata, so reuse would corrupt IRS results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{}", self.0)
    }
}

impl Oid {
    /// Parse the `oid:N` display form back into an `Oid` — the inverse of
    /// `Display`, used when IRS results carry OIDs as external keys.
    pub fn parse(s: &str) -> Option<Oid> {
        s.strip_prefix("oid:")?.parse().ok().map(Oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let oid = Oid(42);
        assert_eq!(oid.to_string(), "oid:42");
        assert_eq!(Oid::parse("oid:42"), Some(oid));
        assert_eq!(Oid::parse("42"), None);
        assert_eq!(Oid::parse("oid:x"), None);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(Oid(2) < Oid(10));
    }
}
