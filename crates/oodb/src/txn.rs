//! Transactions: redo buffering for the WAL, undo for in-memory abort.

use crate::object::Object;
use crate::oid::Oid;
use crate::store::wal::Record;
use crate::value::Value;

/// How to reverse one applied operation.
#[allow(clippy::enum_variant_names)] // names mirror the operations they reverse
#[derive(Debug, Clone)]
pub(crate) enum UndoOp {
    /// Reverse a create: remove the object again.
    UnCreate(Oid),
    /// Reverse an attribute set: restore the previous value.
    UnSetAttr { oid: Oid, attr: String, old: Value },
    /// Reverse a delete: re-insert the removed object.
    UnDelete(Box<Object>),
}

/// A transaction handle. Obtained from [`crate::Database::begin`]; every
/// mutating database call takes one. Dropping an uncommitted handle
/// without calling `commit`/`abort` leaves its effects in memory but not
/// in the WAL — the next recovery discards them, so callers should always
/// finish a transaction explicitly.
#[derive(Debug)]
pub struct Txn {
    pub(crate) id: u64,
    pub(crate) active: bool,
    pub(crate) redo: Vec<Record>,
    pub(crate) undo: Vec<UndoOp>,
}

impl Txn {
    pub(crate) fn new(id: u64) -> Self {
        Txn {
            id,
            active: true,
            redo: Vec::new(),
            undo: Vec::new(),
        }
    }

    /// The transaction id (diagnostic only).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True until commit or abort.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of buffered redo records (diagnostic, used in tests and by
    /// the update-propagation experiment to count write amplification).
    pub fn pending_records(&self) -> usize {
        self.redo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_txn_is_active_and_empty() {
        let t = Txn::new(7);
        assert_eq!(t.id(), 7);
        assert!(t.is_active());
        assert_eq!(t.pending_records(), 0);
    }
}
