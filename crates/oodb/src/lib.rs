#![warn(missing_docs)]

//! `oodb` — an object-oriented database management system.
//!
//! This crate is the stand-in for VODAK in the reproduction of *"Applying
//! a Flexible OODBMS-IRS-Coupling to Structured Document Handling"*
//! (Volz, Aberer, Böhm — ICDE 1996). It provides the OODBMS feature set
//! the paper's Section 1.1 enumerates: persistence (write-ahead log +
//! snapshots with recovery), transactions, declarative access (a VQL-like
//! query language with method calls), complex objects, object identity,
//! classes with inheritance, and extensibility (an application-defined
//! method registry — the hook through which the coupling registers
//! `getIRSValue` and friends).
//!
//! # Quick start
//!
//! ```
//! use oodb::{Database, Value};
//!
//! let mut db = Database::in_memory();
//! let para = db.define_class("PARA", None).unwrap();
//! let mut txn = db.begin();
//! let oid = db.create_object(&mut txn, para).unwrap();
//! db.set_attr(&mut txn, oid, "content", Value::from("Telnet is a protocol")).unwrap();
//! db.commit(txn).unwrap();
//!
//! let rows = db.query("ACCESS p FROM p IN PARA WHERE p -> getAttributeValue('content') != NULL").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub mod database;
pub mod error;
pub mod index;
pub mod method;
pub mod object;
pub mod oid;
pub mod query;
pub mod schema;
pub mod store;
pub mod txn;
pub mod util;
pub mod value;

pub use database::Database;
pub use error::{DbError, Result};
pub use method::{MethodCost, MethodCtx, MethodRegistry};
pub use object::Object;
pub use oid::Oid;
pub use query::Row;
pub use schema::{ClassId, Schema};
pub use txn::Txn;
pub use value::Value;
