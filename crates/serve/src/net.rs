//! The TCP front-end: an accept loop feeding per-connection reader
//! threads into a [`Server`]'s bounded-queue machinery.
//!
//! A [`NetServer`] wraps an already-started [`Server`] and binds a
//! listener. Each accepted connection gets one reader thread that
//! speaks the [`crate::wire`] protocol: read a request frame, decode,
//! submit through the server (admission control, deadlines, and the
//! writer lane all apply exactly as in-process), then answer with a
//! response frame or an error frame carrying a [`Status`] code. The
//! protocol is strictly sequential per connection — clients wanting
//! concurrency open more connections, which is also what keeps the
//! blocking [`crate::Client`] trivial.
//!
//! Malformed input (bad magic, bad CRC, over-cap length, undecodable
//! payload) is answered with a best-effort `400` error frame, then the
//! connection closes: once a stream has lost framing sync there is no
//! safe way to keep reading it.
//!
//! Shutdown drains: [`NetServer::shutdown`] stops the accept loop,
//! half-closes the read side of every live connection (a request in
//! flight still completes and its response is still written), joins the
//! connection threads, and only then shuts the inner [`Server`] down —
//! so admitted work finishes and propagation logs flush as usual.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::metrics::MetricsSnapshot;
use crate::server::Server;
use crate::wire::{
    decode_request, encode_fault, encode_response, read_frame, write_frame, FrameKind, Status,
    WireError, WireFault,
};

/// Lock a mutex, recovering the data if a panicking holder poisoned it
/// (the protected registries stay structurally valid across panics).
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct NetState {
    shutting_down: AtomicBool,
    /// Read-half handles of live connections, for the drain half-close.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Join handles of connection threads (including finished ones;
    /// joined at shutdown).
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
}

/// A TCP listener serving the wire protocol over a [`Server`].
pub struct NetServer {
    server: Option<Arc<Server>>,
    state: Arc<NetState>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections against `server`.
    pub fn bind(server: Server, addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let server = Arc::new(server);
        let state = Arc::new(NetState {
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let accept_thread = {
            let server = Arc::clone(&server);
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(listener, server, state))
        };
        Ok(NetServer {
            server: Some(server),
            state,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the inner server's request metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.server
            .as_ref()
            .expect("server present until shutdown")
            .metrics()
    }

    /// Graceful shutdown: stop accepting, drain live connections (an
    /// in-flight request still gets its response), then shut the inner
    /// [`Server`] down (which drains its queues and flushes propagation
    /// logs). Returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> MetricsSnapshot {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop: a throwaway connection makes
        // `accept` return, and the loop then observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Half-close every live connection's read side. Reader threads
        // blocked in `read_frame` see EOF and exit; a thread mid-request
        // finishes it and writes the response before noticing.
        for (_, stream) in lock_recover(&self.state.conns).drain() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        loop {
            let threads: Vec<JoinHandle<()>> =
                lock_recover(&self.state.conn_threads).drain(..).collect();
            if threads.is_empty() {
                break;
            }
            for handle in threads {
                let _ = handle.join();
            }
        }
        match self.server.take() {
            Some(server) => match Arc::try_unwrap(server) {
                Ok(server) => server.shutdown(),
                // Unreachable in practice: all clones lived in joined
                // threads. Fall back to a snapshot without consuming.
                Err(server) => server.metrics(),
            },
            None => MetricsSnapshot::default(),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.server.is_some() {
            self.shutdown_inner();
        }
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("live_connections", &lock_recover(&self.state.conns).len())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, server: Arc<Server>, state: Arc<NetState>) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) if state.shutting_down.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if state.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connection from shutdown, or a late client:
            // either way, refuse politely and stop accepting.
            let _ = answer_fault(
                &mut BufWriter::new(&stream),
                &WireFault {
                    status: Status::ShuttingDown,
                    message: "server is shutting down".into(),
                },
            );
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn_id = state.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(registered) = stream.try_clone() {
            lock_recover(&state.conns).insert(conn_id, registered);
        }
        let server = Arc::clone(&server);
        let conn_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            handle_connection(&server, stream, &conn_state.shutting_down);
            lock_recover(&conn_state.conns).remove(&conn_id);
        });
        lock_recover(&state.conn_threads).push(handle);
    }
}

/// Serve one connection until clean close, protocol error, or drain.
fn handle_connection(server: &Server, stream: TcpStream, shutting_down: &AtomicBool) {
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) if frame.kind == FrameKind::Request => {
                // The drain half-closes our read side, but bytes the
                // kernel had already buffered still arrive: a request
                // pipelined behind an in-flight one is read *after*
                // drain begins. Answer 503 instead of starting work the
                // shutdown will not wait for — the client gets a
                // determinate go-away, never a hang or a reset.
                if shutting_down.load(Ordering::SeqCst) {
                    let _ = answer_fault(
                        &mut writer,
                        &WireFault {
                            status: Status::ShuttingDown,
                            message: "server is draining".into(),
                        },
                    );
                    return;
                }
                match decode_request(&frame.payload) {
                    Ok(request) => {
                        let answered = match server.call(request) {
                            Ok(response) => answer_response(&mut writer, &response),
                            Err(err) => answer_fault(&mut writer, &WireFault::from_error(&err)),
                        };
                        if answered.is_err() {
                            return; // client went away mid-answer
                        }
                    }
                    Err(err) => {
                        let _ = answer_fault(
                            &mut writer,
                            &WireFault {
                                status: Status::BadRequest,
                                message: err.to_string(),
                            },
                        );
                        return;
                    }
                }
            }
            Ok(Some(frame)) => {
                // A response/error frame from a client is a protocol
                // violation; tell it so and drop the connection.
                let _ = answer_fault(
                    &mut writer,
                    &WireFault {
                        status: Status::BadRequest,
                        message: format!("unexpected {:?} frame from client", frame.kind),
                    },
                );
                return;
            }
            Ok(None) => return,              // clean close
            Err(WireError::Io(_)) => return, // reset/truncation: nothing to answer
            Err(err) => {
                // Framing-level garbage (bad magic/CRC/version/length):
                // answer best-effort, then close — the stream has lost
                // sync and further reads would misparse.
                let _ = answer_fault(
                    &mut writer,
                    &WireFault {
                        status: Status::BadRequest,
                        message: err.to_string(),
                    },
                );
                return;
            }
        }
    }
}

fn answer_response(
    writer: &mut BufWriter<TcpStream>,
    response: &crate::request::Response,
) -> Result<(), WireError> {
    write_frame(writer, FrameKind::Response, &encode_response(response))
}

fn answer_fault(writer: &mut impl io::Write, fault: &WireFault) -> Result<(), WireError> {
    write_frame(writer, FrameKind::Error, &encode_fault(fault))
}
