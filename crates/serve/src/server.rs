//! The request front-end: thread pool, admission control, deadlines,
//! graceful shutdown.
//!
//! A [`Server`] owns a [`coupling::SharedSystem`] plus a bounded read
//! queue and a durable task scheduler. **Reads** ([`Request::is_write`]
//! == false) fan out across `read_workers` threads, each executing
//! under the system's shared read lock so queries overlap. **Writes**
//! become [`coupling::tasks`] entries: durably enqueued (journaled when
//! the server has a journal directory), executed by the scheduler's
//! single executor thread — there is exactly one mutator, so
//! propagation logs never race — and merged with adjacent compatible
//! tasks into shared batches. [`Request::EnqueueTask`] answers
//! immediately with the task id (202-accepted style); the deprecated
//! synchronous write shapes still block until their task executes, via
//! a completion waiter on the queue.
//!
//! Admission control is reject-not-queue: a full queue fails the
//! request immediately with [`CouplingError::Overloaded`], keeping
//! tail latency bounded under overload. Each read may carry a deadline;
//! one that expires while still queued is failed with
//! [`CouplingError::Timeout`] *without* executing. Deadlines do not
//! apply to enqueued tasks — once durably accepted, a task always runs.
//!
//! Shutdown is graceful: the read queue closes (new work is rejected
//! with [`CouplingError::ShuttingDown`]), workers drain everything
//! already admitted, and the scheduler drains every admitted task and
//! flushes every propagation log before its thread exits.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use coupling::tasks::{Scheduler, SchedulerConfig, TaskKind, TaskQueue, TaskWaiter};
use coupling::{
    evaluate_mixed, CouplingError, DocumentSystem, PropagationStrategy, ResultOrigin, SharedSystem,
};
use oodb::Oid;

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{Request, Response};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent read-executing threads.
    pub read_workers: usize,
    /// Admission limit of the read queue and of the task queue.
    pub queue_capacity: usize,
    /// Deadline applied to requests submitted without an explicit one.
    /// `None` means such requests never time out.
    pub default_deadline: Option<Duration>,
    /// Update propagation strategy for the scheduler's propagators.
    pub propagation: PropagationStrategy,
    /// When set, the task ledger and each collection's propagation log
    /// are durably journaled under this directory
    /// ([`coupling::tasks_ledger_path`], [`coupling::journal_path`]).
    pub journal_dir: Option<PathBuf>,
    /// Serve reads only: write requests are rejected at admission with
    /// [`irs::IrsError::ReadOnly`] and no scheduler (or ledger file) is
    /// created. This is how a replica refuses to fork its frozen
    /// snapshot from the primary.
    pub read_only: bool,
    /// Most tasks merged into one scheduler execution batch.
    pub batch_max: usize,
    /// Merge adjacent compatible tasks (disable for the unbatched
    /// baseline benchmarks compare against).
    pub batching: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_workers: 4,
            queue_capacity: 64,
            default_deadline: None,
            propagation: PropagationStrategy::Eager,
            journal_dir: None,
            read_only: false,
            batch_max: 32,
            batching: true,
        }
    }
}

impl ServerConfig {
    /// Start building a configuration from the defaults — the
    /// counterpart of [`coupling::CollectionSetup::builder`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }

    /// Set the number of read worker threads (min 1).
    pub fn read_workers(mut self, n: usize) -> Self {
        self.read_workers = n.max(1);
        self
    }

    /// Set the per-queue capacity (min 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Set the default per-request deadline.
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = Some(d);
        self
    }

    /// Set the scheduler's propagation strategy.
    pub fn propagation(mut self, strategy: PropagationStrategy) -> Self {
        self.propagation = strategy;
        self
    }

    /// Journal the task ledger and propagation logs under `dir`.
    pub fn journal_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.journal_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Refuse write requests (replica mode).
    pub fn read_only(mut self, read_only: bool) -> Self {
        self.read_only = read_only;
        self
    }

    /// Set the largest execution batch (min 1).
    pub fn batch_max(mut self, n: usize) -> Self {
        self.batch_max = n.max(1);
        self
    }

    /// Enable or disable adjacent-task merging.
    pub fn batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    fn scheduler_config(&self) -> SchedulerConfig {
        let mut builder = SchedulerConfig::builder()
            .queue_capacity(self.queue_capacity)
            .batch_max(self.batch_max)
            .batching(self.batching)
            .propagation(self.propagation);
        if let Some(dir) = &self.journal_dir {
            builder = builder.journal_dir(dir);
        }
        builder.build()
    }
}

/// Fluent builder for [`ServerConfig`]. The config's own chainable
/// setters remain for in-place tweaking; the builder is the canonical
/// construction path (no field-struct literals at call sites).
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Set the number of read worker threads (min 1).
    pub fn read_workers(mut self, n: usize) -> Self {
        self.config = self.config.read_workers(n);
        self
    }

    /// Set the per-queue capacity (min 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.config = self.config.queue_capacity(n);
        self
    }

    /// Set the default per-request deadline.
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.config = self.config.default_deadline(d);
        self
    }

    /// Set the scheduler's propagation strategy.
    pub fn propagation(mut self, strategy: PropagationStrategy) -> Self {
        self.config = self.config.propagation(strategy);
        self
    }

    /// Journal the task ledger and propagation logs under `dir`.
    pub fn journal_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.config = self.config.journal_dir(dir);
        self
    }

    /// Refuse write requests (replica mode).
    pub fn read_only(mut self, read_only: bool) -> Self {
        self.config = self.config.read_only(read_only);
        self
    }

    /// Set the largest execution batch (min 1).
    pub fn batch_max(mut self, n: usize) -> Self {
        self.config = self.config.batch_max(n);
        self
    }

    /// Enable or disable adjacent-task merging.
    pub fn batching(mut self, on: bool) -> Self {
        self.config = self.config.batching(on);
        self
    }

    /// Finish building.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

// ---------------------------------------------------------------------
// Tickets
// ---------------------------------------------------------------------

struct TicketState {
    slot: Mutex<Option<coupling::Result<Response>>>,
    ready: Condvar,
}

/// Lock a ticket/queue mutex, recovering from poisoning: a panicking
/// worker must not cascade panics into every client thread blocked on
/// an unrelated ticket. The protected `Option` slot is valid in every
/// state the lock can be observed in, so recovery is safe.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A claim on the eventual outcome of a submitted request.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Block until the request finishes and return its outcome.
    pub fn wait(self) -> coupling::Result<Response> {
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// True once an outcome is available (then [`Ticket::wait`] will
    /// not block).
    pub fn is_ready(&self) -> bool {
        lock_recover(&self.state.slot).is_some()
    }
}

/// Worker-side handle that must deliver exactly one outcome to the
/// ticket. Dropping it without completing (worker panic, shutdown
/// teardown) delivers [`CouplingError::ShuttingDown`] so no client
/// waits forever.
struct Completion {
    state: Option<Arc<TicketState>>,
}

impl Completion {
    fn deliver(state: &Arc<TicketState>, result: coupling::Result<Response>) {
        *lock_recover(&state.slot) = Some(result);
        state.ready.notify_all();
    }

    fn complete(mut self, result: coupling::Result<Response>) {
        if let Some(state) = self.state.take() {
            Completion::deliver(&state, result);
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            Completion::deliver(&state, Err(CouplingError::ShuttingDown));
        }
    }
}

fn ticket_pair() -> (Ticket, Completion) {
    let state = Arc::new(TicketState {
        slot: Mutex::new(None),
        ready: Condvar::new(),
    });
    (
        Ticket {
            state: Arc::clone(&state),
        },
        Completion { state: Some(state) },
    )
}

struct Job {
    request: Request,
    completion: Completion,
    enqueued: Instant,
    deadline: Option<Duration>,
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

struct ServerState {
    read_queue: BoundedQueue<Job>,
    /// The scheduler's queue handle — `None` on read-only replicas.
    /// Read workers answer [`Request::TaskStatus`]/[`Request::ListTasks`]
    /// from it without touching the document system.
    task_queue: Option<TaskQueue>,
    metrics: Metrics,
}

/// Thread-pool request front-end over a [`DocumentSystem`].
pub struct Server {
    shared: SharedSystem,
    state: Arc<ServerState>,
    config: ServerConfig,
    scheduler: Option<Scheduler>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Take ownership of `sys` and start serving it.
    pub fn start(sys: DocumentSystem, config: ServerConfig) -> Server {
        Server::start_shared(SharedSystem::new(sys), config)
    }

    /// Serve an already-shared system (other handles keep direct
    /// access; the server's scheduler still assumes it is the only
    /// writer of propagation state).
    ///
    /// # Panics
    ///
    /// Panics when a configured journal directory cannot be created or
    /// its task ledger cannot be opened — durability was requested and
    /// is not available, which is not a condition to serve through.
    pub fn start_shared(shared: SharedSystem, config: ServerConfig) -> Server {
        let scheduler = if config.read_only {
            None
        } else {
            Some(
                Scheduler::start(shared.clone(), config.scheduler_config())
                    .expect("task ledger opens under the configured journal directory"),
            )
        };
        let state = Arc::new(ServerState {
            read_queue: BoundedQueue::new(config.queue_capacity),
            task_queue: scheduler.as_ref().map(|s| s.queue().clone()),
            metrics: Metrics::new(),
        });
        let mut workers = Vec::with_capacity(config.read_workers.max(1));
        for _ in 0..config.read_workers.max(1) {
            let shared = shared.clone();
            let state = Arc::clone(&state);
            workers.push(std::thread::spawn(move || {
                while let Some(job) = state.read_queue.pop() {
                    run_job(&shared, &state, job);
                }
            }));
        }
        Server {
            shared,
            state,
            config,
            scheduler,
            workers,
        }
    }

    /// Submit with the configured default deadline. Rejections
    /// (overload, shutdown) come back as an already-completed ticket.
    pub fn submit(&self, request: Request) -> Ticket {
        self.submit_opt(request, self.config.default_deadline)
    }

    /// Submit with an explicit deadline measured from now.
    pub fn submit_with_deadline(&self, request: Request, deadline: Duration) -> Ticket {
        self.submit_opt(request, Some(deadline))
    }

    fn submit_opt(&self, request: Request, deadline: Option<Duration>) -> Ticket {
        let (ticket, completion) = ticket_pair();
        if self.config.read_only && request.is_write() {
            self.state.metrics.request_failed();
            completion.complete(Err(CouplingError::Irs(irs::IrsError::ReadOnly(
                "server is a read-only replica; writes go to the primary".into(),
            ))));
            return ticket;
        }
        // A deadline that has already expired cannot be met: fail it
        // now instead of burning a queue slot on work the client has
        // given up on before it could even start waiting.
        if let Some(d) = deadline {
            if d.is_zero() {
                self.state.metrics.request_timed_out();
                completion.complete(Err(CouplingError::Timeout(d)));
                return ticket;
            }
        }
        if request.is_write() {
            // Writes do not ride a worker queue: they become durable
            // tasks at submit time (deadlines no longer apply — once
            // accepted, a task always runs).
            self.submit_write(request, completion);
            return ticket;
        }
        let job = Job {
            request,
            completion,
            enqueued: Instant::now(),
            deadline,
        };
        match self.state.read_queue.push(job) {
            Ok(()) => {
                self.state.metrics.request_submitted();
            }
            Err(PushError::Full(job)) => {
                self.state.metrics.request_rejected_overload();
                job.completion.complete(Err(CouplingError::Overloaded(
                    self.state.read_queue.capacity(),
                )));
            }
            Err(PushError::Closed(job)) => {
                self.state.metrics.request_rejected_shutdown();
                job.completion.complete(Err(CouplingError::ShuttingDown));
            }
        }
        ticket
    }

    /// Route a write request into the task queue. `EnqueueTask` resolves
    /// the ticket immediately with the accepted id; the deprecated
    /// synchronous shapes resolve when their task finishes executing.
    #[allow(deprecated)]
    fn submit_write(&self, request: Request, completion: Completion) {
        let Some(queue) = &self.state.task_queue else {
            // No scheduler only happens on read-only servers, which are
            // rejected earlier; defensively refuse rather than panic.
            self.state.metrics.request_failed();
            completion.complete(Err(CouplingError::ShuttingDown));
            return;
        };
        let reject = |metrics: &Metrics, err: &CouplingError| match err {
            CouplingError::Overloaded(_) => metrics.request_rejected_overload(),
            CouplingError::ShuttingDown => metrics.request_rejected_shutdown(),
            _ => metrics.request_failed(),
        };
        match request {
            Request::EnqueueTask { kind } => {
                let start = Instant::now();
                match queue.enqueue(kind) {
                    Ok(id) => {
                        self.state.metrics.request_submitted();
                        self.state.metrics.request_completed(start.elapsed(), None);
                        completion.complete(Ok(Response::TaskAccepted(id)));
                    }
                    Err(err) => {
                        reject(&self.state.metrics, &err);
                        completion.complete(Err(err));
                    }
                }
            }
            Request::UpdateText {
                oid,
                text,
                collections,
            } => self.submit_legacy_write(
                TaskKind::UpdateText {
                    oid,
                    text,
                    collections,
                },
                false,
                completion,
            ),
            Request::IndexObjects {
                collection,
                spec_query,
            } => self.submit_legacy_write(
                TaskKind::IndexObjects {
                    collection,
                    spec_query,
                },
                true,
                completion,
            ),
            other => {
                self.state.metrics.request_failed();
                completion.complete(Err(CouplingError::BadSpecQuery(format!(
                    "read request {:?} routed to the write path",
                    other.label()
                ))));
            }
        }
    }

    /// The deprecated blocking write shapes: enqueue the task with a
    /// waiter that resolves the caller's ticket on execution, preserving
    /// the old call-and-wait semantics over the new durable queue.
    fn submit_legacy_write(&self, kind: TaskKind, indexed: bool, completion: Completion) {
        let queue = self
            .state
            .task_queue
            .as_ref()
            .expect("submit_write checked the scheduler exists");
        let state = Arc::clone(&self.state);
        let enqueued = Instant::now();
        let waiter: TaskWaiter = Box::new(move |result| match result {
            Ok(count) => {
                state.metrics.request_completed(enqueued.elapsed(), None);
                let response = if indexed {
                    Response::Indexed {
                        objects: count as usize,
                    }
                } else {
                    Response::Updated {
                        collections: count as usize,
                    }
                };
                completion.complete(Ok(response));
            }
            Err(err) => {
                match &err {
                    CouplingError::Overloaded(_) => state.metrics.request_rejected_overload(),
                    CouplingError::ShuttingDown => state.metrics.request_rejected_shutdown(),
                    _ => state.metrics.request_failed(),
                }
                completion.complete(Err(err));
            }
        });
        if queue.enqueue_with_waiter(kind, waiter).is_some() {
            self.state.metrics.request_submitted();
        }
    }

    /// Submit and wait: the synchronous convenience call.
    pub fn call(&self, request: Request) -> coupling::Result<Response> {
        self.submit(request).wait()
    }

    /// Snapshot of the server's request counters, latency histogram,
    /// and task-scheduler counters (zero on read-only replicas).
    pub fn metrics(&self) -> MetricsSnapshot {
        let snapshot = self.state.metrics.snapshot();
        match &self.state.task_queue {
            Some(queue) => snapshot.with_tasks(queue.stats()),
            None => snapshot,
        }
    }

    /// Current `(read queue, task queue)` depths.
    pub fn queue_depths(&self) -> (usize, usize) {
        (
            self.state.read_queue.len(),
            self.state
                .task_queue
                .as_ref()
                .map(|q| q.depth())
                .unwrap_or(0),
        )
    }

    /// The task queue handle — enqueue, status probes, and the
    /// [`coupling::tasks::TaskEvent`] subscription stream. `None` on
    /// read-only replicas.
    pub fn tasks(&self) -> Option<&TaskQueue> {
        self.state.task_queue.as_ref()
    }

    /// The served system — for direct inspection (e.g. in tests) or for
    /// keeping a handle beyond the server's lifetime.
    pub fn system(&self) -> &SharedSystem {
        &self.shared
    }

    /// Graceful shutdown: refuse new requests, drain the read queue and
    /// the task queue, flush propagation logs, join all workers.
    /// Returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.metrics()
    }

    fn shutdown_inner(&mut self) {
        self.state.read_queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(scheduler) = self.scheduler.take() {
            scheduler.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (r, w) = self.queue_depths();
        f.debug_struct("Server")
            .field("read_workers", &self.config.read_workers)
            .field("queue_capacity", &self.config.queue_capacity)
            .field("read_depth", &r)
            .field("task_depth", &w)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

fn run_job(shared: &SharedSystem, state: &ServerState, job: Job) {
    let Job {
        request,
        completion,
        enqueued,
        deadline,
    } = job;
    if let Some(d) = deadline {
        if enqueued.elapsed() > d {
            state.metrics.request_timed_out();
            completion.complete(Err(CouplingError::Timeout(d)));
            return;
        }
    }
    // On a handler panic the closure's stack unwinds, `completion`
    // drops, and the ticket resolves to `ShuttingDown` — the worker
    // thread itself survives for the next job.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let result = execute_read(shared, state.task_queue.as_ref(), &request);
        (completion, result)
    }));
    match outcome {
        Ok((completion, Ok((response, origin)))) => {
            state.metrics.request_completed(enqueued.elapsed(), origin);
            completion.complete(Ok(response));
        }
        Ok((completion, Err(err))) => {
            state.metrics.request_failed();
            completion.complete(Err(err));
        }
        Err(_) => {
            state.metrics.request_failed();
        }
    }
}

type Executed = coupling::Result<(Response, Option<ResultOrigin>)>;

fn execute_read(shared: &SharedSystem, tasks: Option<&TaskQueue>, request: &Request) -> Executed {
    // Task observability answers from the ledger alone — no system lock.
    match request {
        Request::TaskStatus { id } => {
            let task = tasks
                .and_then(|q| q.task_status(*id))
                .ok_or(CouplingError::UnknownTask(*id))?;
            return Ok((Response::TaskInfo(task), None));
        }
        Request::ListTasks { filter } => {
            let list = tasks.map(|q| q.list_tasks(filter)).unwrap_or_default();
            return Ok((Response::TaskList(list), None));
        }
        _ => {}
    }
    shared.read(|sys| match request {
        Request::IrsQuery { collection, query } => {
            let coll = sys.collection(collection)?;
            let (map, origin) = coll.get_irs_result_with_origin(query)?;
            let mut hits: Vec<(Oid, f64)> = map.into_iter().collect();
            hits.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            Ok((Response::IrsResult { hits, origin }, Some(origin)))
        }
        Request::MixedQuery {
            collection,
            class,
            irs_query,
            threshold,
            strategy,
        } => {
            let coll = sys.collection(collection)?;
            let outcome = evaluate_mixed(
                coll.db(),
                &coll,
                class,
                &|_, _| true,
                irs_query,
                *threshold,
                *strategy,
            )?;
            let origin = outcome.origin;
            Ok((
                Response::Mixed {
                    oids: outcome.oids,
                    strategy: outcome.strategy,
                    origin,
                },
                Some(origin),
            ))
        }
        Request::GetIrsValue {
            collection,
            query,
            oid,
        } => {
            let coll = sys.collection(collection)?;
            let ctx = coll.db().method_ctx();
            let value = coll.get_irs_value(&ctx, query, *oid)?;
            Ok((Response::Value(value), None))
        }
        Request::TermStats { collection, query } => {
            let coll = sys.collection(collection)?;
            let globals = coll.query_globals(query)?;
            Ok((Response::TermStats(globals), None))
        }
        Request::IrsQueryGlobal {
            collection,
            query,
            k,
            globals,
        } => {
            let coll = sys.collection(collection)?;
            let k = usize::try_from(*k).unwrap_or(usize::MAX);
            let hits = coll.get_irs_result_global(query, k, globals)?;
            Ok((Response::IrsKeyed { hits }, None))
        }
        Request::Ping => Ok((Response::Pong, None)),
        other => Err(CouplingError::BadSpecQuery(format!(
            "write request {:?} routed to the read lane",
            other.label()
        ))),
    })
}
