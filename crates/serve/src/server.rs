//! The request front-end: thread pool, admission control, deadlines,
//! graceful shutdown.
//!
//! A [`Server`] owns a [`coupling::SharedSystem`] plus two bounded
//! queues. **Reads** ([`Request::is_write`] == false) fan out across
//! `read_workers` threads, each executing under the system's shared
//! read lock so queries overlap. **Writes** serialise through one
//! dedicated writer lane that owns the per-collection update
//! [`Propagator`]s — there is exactly one mutator, so propagation logs
//! never race.
//!
//! Admission control is reject-not-queue: a full queue fails the
//! request immediately with [`CouplingError::Overloaded`], keeping
//! tail latency bounded under overload. Each request may carry a
//! deadline; one that expires while still queued is failed with
//! [`CouplingError::Timeout`] *without* executing (the work would be
//! wasted — the client has given up). Per-call retry/breaker behaviour
//! is unchanged: it lives inside the collection the request lands on.
//!
//! Shutdown is graceful: queues close (new work is rejected with
//! [`CouplingError::ShuttingDown`]), workers drain everything already
//! admitted, and the writer lane flushes every propagation log —
//! journaled if the server was configured with a journal directory —
//! before its thread exits.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use coupling::{
    evaluate_mixed, journal_path, CouplingError, DocumentSystem, PropagationStrategy, Propagator,
    ResultOrigin, SharedSystem,
};
use oodb::Oid;

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{Request, Response};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent read-executing threads.
    pub read_workers: usize,
    /// Admission limit of *each* queue (read lane and write lane).
    pub queue_capacity: usize,
    /// Deadline applied to requests submitted without an explicit one.
    /// `None` means such requests never time out.
    pub default_deadline: Option<Duration>,
    /// Update propagation strategy for the writer lane's propagators.
    pub propagation: PropagationStrategy,
    /// When set, each collection's propagation log is durably journaled
    /// under this directory ([`coupling::journal_path`]).
    pub journal_dir: Option<PathBuf>,
    /// Serve reads only: write requests are rejected at admission with
    /// [`irs::IrsError::ReadOnly`] instead of entering the write lane.
    /// This is how a replica refuses to fork its frozen snapshot from
    /// the primary.
    pub read_only: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_workers: 4,
            queue_capacity: 64,
            default_deadline: None,
            propagation: PropagationStrategy::Eager,
            journal_dir: None,
            read_only: false,
        }
    }
}

impl ServerConfig {
    /// Set the number of read worker threads (min 1).
    pub fn read_workers(mut self, n: usize) -> Self {
        self.read_workers = n.max(1);
        self
    }

    /// Set the per-lane queue capacity (min 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Set the default per-request deadline.
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = Some(d);
        self
    }

    /// Set the writer lane's propagation strategy.
    pub fn propagation(mut self, strategy: PropagationStrategy) -> Self {
        self.propagation = strategy;
        self
    }

    /// Journal propagation logs under `dir`.
    pub fn journal_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.journal_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Refuse write requests (replica mode).
    pub fn read_only(mut self, read_only: bool) -> Self {
        self.read_only = read_only;
        self
    }
}

// ---------------------------------------------------------------------
// Tickets
// ---------------------------------------------------------------------

struct TicketState {
    slot: Mutex<Option<coupling::Result<Response>>>,
    ready: Condvar,
}

/// Lock a ticket/queue mutex, recovering from poisoning: a panicking
/// worker must not cascade panics into every client thread blocked on
/// an unrelated ticket. The protected `Option` slot is valid in every
/// state the lock can be observed in, so recovery is safe.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A claim on the eventual outcome of a submitted request.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Block until the request finishes and return its outcome.
    pub fn wait(self) -> coupling::Result<Response> {
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// True once an outcome is available (then [`Ticket::wait`] will
    /// not block).
    pub fn is_ready(&self) -> bool {
        lock_recover(&self.state.slot).is_some()
    }
}

/// Worker-side handle that must deliver exactly one outcome to the
/// ticket. Dropping it without completing (worker panic, shutdown
/// teardown) delivers [`CouplingError::ShuttingDown`] so no client
/// waits forever.
struct Completion {
    state: Option<Arc<TicketState>>,
}

impl Completion {
    fn deliver(state: &Arc<TicketState>, result: coupling::Result<Response>) {
        *lock_recover(&state.slot) = Some(result);
        state.ready.notify_all();
    }

    fn complete(mut self, result: coupling::Result<Response>) {
        if let Some(state) = self.state.take() {
            Completion::deliver(&state, result);
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            Completion::deliver(&state, Err(CouplingError::ShuttingDown));
        }
    }
}

fn ticket_pair() -> (Ticket, Completion) {
    let state = Arc::new(TicketState {
        slot: Mutex::new(None),
        ready: Condvar::new(),
    });
    (
        Ticket {
            state: Arc::clone(&state),
        },
        Completion { state: Some(state) },
    )
}

struct Job {
    request: Request,
    completion: Completion,
    enqueued: Instant,
    deadline: Option<Duration>,
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

struct ServerState {
    read_queue: BoundedQueue<Job>,
    write_queue: BoundedQueue<Job>,
    metrics: Metrics,
}

/// Thread-pool request front-end over a [`DocumentSystem`].
pub struct Server {
    shared: SharedSystem,
    state: Arc<ServerState>,
    config: ServerConfig,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Take ownership of `sys` and start serving it.
    pub fn start(sys: DocumentSystem, config: ServerConfig) -> Server {
        Server::start_shared(SharedSystem::new(sys), config)
    }

    /// Serve an already-shared system (other handles keep direct
    /// access; the server's writer lane still assumes it is the only
    /// writer of propagation state).
    pub fn start_shared(shared: SharedSystem, config: ServerConfig) -> Server {
        let state = Arc::new(ServerState {
            read_queue: BoundedQueue::new(config.queue_capacity),
            write_queue: BoundedQueue::new(config.queue_capacity),
            metrics: Metrics::new(),
        });
        let mut workers = Vec::with_capacity(config.read_workers.max(1) + 1);
        for _ in 0..config.read_workers.max(1) {
            let shared = shared.clone();
            let state = Arc::clone(&state);
            workers.push(std::thread::spawn(move || {
                while let Some(job) = state.read_queue.pop() {
                    run_job(&shared, &state, job, &mut None);
                }
            }));
        }
        {
            let shared = shared.clone();
            let state = Arc::clone(&state);
            let lane_config = config.clone();
            workers.push(std::thread::spawn(move || {
                let mut lane = WriterLane {
                    config: lane_config,
                    propagators: HashMap::new(),
                };
                while let Some(job) = state.write_queue.pop() {
                    run_job(&shared, &state, job, &mut Some(&mut lane));
                }
                lane.flush_all(&shared);
            }));
        }
        Server {
            shared,
            state,
            config,
            workers,
        }
    }

    /// Submit with the configured default deadline. Rejections
    /// (overload, shutdown) come back as an already-completed ticket.
    pub fn submit(&self, request: Request) -> Ticket {
        self.submit_opt(request, self.config.default_deadline)
    }

    /// Submit with an explicit deadline measured from now.
    pub fn submit_with_deadline(&self, request: Request, deadline: Duration) -> Ticket {
        self.submit_opt(request, Some(deadline))
    }

    fn submit_opt(&self, request: Request, deadline: Option<Duration>) -> Ticket {
        let queue = if request.is_write() {
            &self.state.write_queue
        } else {
            &self.state.read_queue
        };
        let (ticket, completion) = ticket_pair();
        if self.config.read_only && request.is_write() {
            self.state.metrics.request_failed();
            completion.complete(Err(CouplingError::Irs(irs::IrsError::ReadOnly(
                "server is a read-only replica; writes go to the primary".into(),
            ))));
            return ticket;
        }
        // A deadline that has already expired cannot be met: fail it
        // now instead of burning a queue slot on work the client has
        // given up on before it could even start waiting.
        if let Some(d) = deadline {
            if d.is_zero() {
                self.state.metrics.request_timed_out();
                completion.complete(Err(CouplingError::Timeout(d)));
                return ticket;
            }
        }
        let job = Job {
            request,
            completion,
            enqueued: Instant::now(),
            deadline,
        };
        match queue.push(job) {
            Ok(()) => {
                self.state.metrics.request_submitted();
            }
            Err(PushError::Full(job)) => {
                self.state.metrics.request_rejected_overload();
                job.completion
                    .complete(Err(CouplingError::Overloaded(queue.capacity())));
            }
            Err(PushError::Closed(job)) => {
                self.state.metrics.request_rejected_shutdown();
                job.completion.complete(Err(CouplingError::ShuttingDown));
            }
        }
        ticket
    }

    /// Submit and wait: the synchronous convenience call.
    pub fn call(&self, request: Request) -> coupling::Result<Response> {
        self.submit(request).wait()
    }

    /// Snapshot of the server's request counters and latency histogram.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.state.metrics.snapshot()
    }

    /// Current `(read, write)` queue depths.
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.state.read_queue.len(), self.state.write_queue.len())
    }

    /// The served system — for direct inspection (e.g. in tests) or for
    /// keeping a handle beyond the server's lifetime.
    pub fn system(&self) -> &SharedSystem {
        &self.shared
    }

    /// Graceful shutdown: refuse new requests, drain both lanes, flush
    /// propagation logs, join all workers. Returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.state.metrics.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.state.read_queue.close();
        self.state.write_queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (r, w) = self.queue_depths();
        f.debug_struct("Server")
            .field("read_workers", &self.config.read_workers)
            .field("queue_capacity", &self.config.queue_capacity)
            .field("read_depth", &r)
            .field("write_depth", &w)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// The writer lane's private state: one propagator per collection,
/// created lazily (journaled when configured).
struct WriterLane {
    config: ServerConfig,
    propagators: HashMap<String, Propagator>,
}

impl WriterLane {
    fn take_propagator(&mut self, name: &str) -> coupling::Result<Propagator> {
        if let Some(existing) = self.propagators.remove(name) {
            return Ok(existing);
        }
        match &self.config.journal_dir {
            Some(dir) => {
                Propagator::with_journal(self.config.propagation, &journal_path(dir, name))
            }
            None => Ok(Propagator::new(self.config.propagation)),
        }
    }

    /// Apply every pending propagation log to its collection. Runs on
    /// drain-end so deferred updates are not lost at shutdown; errors
    /// stay in the (journaled) log for the next recovery.
    fn flush_all(&mut self, shared: &SharedSystem) {
        shared.write(|sys| {
            for (name, prop) in self.propagators.iter_mut() {
                if prop.pending().is_empty() {
                    continue;
                }
                let Ok(mut coll) = sys.collection_mut(name) else {
                    continue;
                };
                let ctx = coll.db().method_ctx();
                let _ = prop.flush(&ctx, &mut coll);
            }
        });
    }
}

fn run_job(
    shared: &SharedSystem,
    state: &ServerState,
    job: Job,
    lane: &mut Option<&mut WriterLane>,
) {
    let Job {
        request,
        completion,
        enqueued,
        deadline,
    } = job;
    if let Some(d) = deadline {
        if enqueued.elapsed() > d {
            state.metrics.request_timed_out();
            completion.complete(Err(CouplingError::Timeout(d)));
            return;
        }
    }
    // On a handler panic the closure's stack unwinds, `completion`
    // drops, and the ticket resolves to `ShuttingDown` — the worker
    // thread itself survives for the next job.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let result = match lane {
            Some(writer) => execute_write(shared, writer, &request),
            None => execute_read(shared, &request),
        };
        (completion, result)
    }));
    match outcome {
        Ok((completion, Ok((response, origin)))) => {
            state.metrics.request_completed(enqueued.elapsed(), origin);
            completion.complete(Ok(response));
        }
        Ok((completion, Err(err))) => {
            state.metrics.request_failed();
            completion.complete(Err(err));
        }
        Err(_) => {
            state.metrics.request_failed();
        }
    }
}

type Executed = coupling::Result<(Response, Option<ResultOrigin>)>;

fn execute_read(shared: &SharedSystem, request: &Request) -> Executed {
    shared.read(|sys| match request {
        Request::IrsQuery { collection, query } => {
            let coll = sys.collection(collection)?;
            let (map, origin) = coll.get_irs_result_with_origin(query)?;
            let mut hits: Vec<(Oid, f64)> = map.into_iter().collect();
            hits.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            Ok((Response::IrsResult { hits, origin }, Some(origin)))
        }
        Request::MixedQuery {
            collection,
            class,
            irs_query,
            threshold,
            strategy,
        } => {
            let coll = sys.collection(collection)?;
            let outcome = evaluate_mixed(
                coll.db(),
                &coll,
                class,
                &|_, _| true,
                irs_query,
                *threshold,
                *strategy,
            )?;
            let origin = outcome.origin;
            Ok((
                Response::Mixed {
                    oids: outcome.oids,
                    strategy: outcome.strategy,
                    origin,
                },
                Some(origin),
            ))
        }
        Request::GetIrsValue {
            collection,
            query,
            oid,
        } => {
            let coll = sys.collection(collection)?;
            let ctx = coll.db().method_ctx();
            let value = coll.get_irs_value(&ctx, query, *oid)?;
            Ok((Response::Value(value), None))
        }
        Request::TermStats { collection, query } => {
            let coll = sys.collection(collection)?;
            let globals = coll.query_globals(query)?;
            Ok((Response::TermStats(globals), None))
        }
        Request::IrsQueryGlobal {
            collection,
            query,
            k,
            globals,
        } => {
            let coll = sys.collection(collection)?;
            let k = usize::try_from(*k).unwrap_or(usize::MAX);
            let hits = coll.get_irs_result_global(query, k, globals)?;
            Ok((Response::IrsKeyed { hits }, None))
        }
        Request::Ping => Ok((Response::Pong, None)),
        other => Err(CouplingError::BadSpecQuery(format!(
            "write request {:?} routed to the read lane",
            other.label()
        ))),
    })
}

fn execute_write(shared: &SharedSystem, lane: &mut WriterLane, request: &Request) -> Executed {
    shared.write(|sys| match request {
        Request::UpdateText {
            oid,
            text,
            collections,
        } => {
            // Validate every target up front (each handle drops at the
            // end of its statement — `update_text` re-locks per name).
            for name in collections {
                sys.collection(name)?;
            }
            let mut taken: Vec<(String, Propagator)> = Vec::with_capacity(collections.len());
            for name in collections {
                let prop = lane.take_propagator(name)?;
                taken.push((name.clone(), prop));
            }
            let mut targets: Vec<(&str, &mut Propagator)> = taken
                .iter_mut()
                .map(|(name, prop)| (name.as_str(), prop))
                .collect();
            let result = sys.update_text(*oid, text, &mut targets);
            drop(targets);
            let count = taken.len();
            for (name, prop) in taken {
                lane.propagators.insert(name, prop);
            }
            result?;
            Ok((Response::Updated { collections: count }, None))
        }
        Request::IndexObjects {
            collection,
            spec_query,
        } => {
            let mut coll = sys.collection_mut(collection)?;
            let db = coll.db();
            let objects = coll.index_objects(db, spec_query)?;
            // A re-index invalidates any deferred ops for this
            // collection recorded before it: fold them away so the
            // flush at shutdown does not redo stale work.
            if let Some(prop) = lane.propagators.get_mut(collection) {
                if !prop.pending().is_empty() {
                    let ctx = coll.db().method_ctx();
                    let _ = prop.flush(&ctx, &mut coll);
                }
            }
            Ok((Response::Indexed { objects }, None))
        }
        other => Err(CouplingError::BadSpecQuery(format!(
            "read request {:?} routed to the write lane",
            other.label()
        ))),
    })
}
