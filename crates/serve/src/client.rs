//! A small blocking client for the wire protocol.
//!
//! One [`Client`] owns one TCP connection and speaks strict
//! request/response: [`Client::call`] writes a request frame, then
//! blocks for the matching response or error frame. Open one client per
//! thread for concurrency — that mirrors how the server allocates a
//! reader thread per connection.

use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use coupling::tasks::{Task, TaskFilter, TaskId, TaskKind};
use coupling::ErrorKind;

use crate::request::{Request, Response};
use crate::wire::{
    decode_fault, decode_response, encode_request, read_frame, write_frame, FrameKind, Status,
    WireError, WireFault,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing layer failed (I/O error, bad frame,
    /// undecodable payload).
    Wire(WireError),
    /// The server answered with an error frame.
    Remote(WireFault),
    /// The server closed the connection without answering.
    ConnectionClosed,
}

impl ClientError {
    /// The wire status, when the server answered with one.
    pub fn status(&self) -> Option<Status> {
        match self {
            ClientError::Remote(fault) => Some(fault.status),
            _ => None,
        }
    }

    /// The coupling-taxonomy classification of this failure, mirroring
    /// what an in-process caller would read from
    /// [`coupling::CouplingError::kind`]. Transport failures classify
    /// as [`ErrorKind::Io`] — except expired socket timeouts
    /// (`TimedOut`/`WouldBlock`, platform-dependent), which classify as
    /// [`ErrorKind::Timeout`]; undecodable frames as
    /// [`ErrorKind::Parse`].
    pub fn kind(&self) -> ErrorKind {
        match self {
            ClientError::Wire(WireError::Io(e)) => match e.kind() {
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ErrorKind::Timeout,
                _ => ErrorKind::Io,
            },
            ClientError::Wire(_) => ErrorKind::Parse,
            ClientError::Remote(fault) => fault.status.kind(),
            ClientError::ConnectionClosed => ErrorKind::Io,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire failure: {e}"),
            ClientError::Remote(fault) => write!(f, "server error {fault}"),
            ClientError::ConnectionClosed => f.write_str("connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Socket-level bounds on a [`Client`]'s blocking calls.
///
/// Defaults are deliberately generous — they exist to turn a hung peer
/// into an error *eventually*, not to enforce request deadlines (the
/// hedging layer in [`coupling::remote`] owns latency policy and runs
/// with much tighter bounds on top of its own transport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection. `None` blocks at the
    /// operating system's discretion.
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read of the response stream; expiry
    /// surfaces as a wire I/O error classifying as
    /// [`ErrorKind::Timeout`].
    pub read_timeout: Option<Duration>,
    /// Bound on each blocking socket write.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ClientConfig {
    /// Start building a configuration from the defaults — the
    /// counterpart of [`crate::ServerConfig::builder`].
    pub fn builder() -> ClientConfigBuilder {
        ClientConfigBuilder {
            config: ClientConfig::default(),
        }
    }
}

/// Fluent builder for [`ClientConfig`].
#[derive(Debug, Clone)]
pub struct ClientConfigBuilder {
    config: ClientConfig,
}

impl ClientConfigBuilder {
    /// Bound the TCP connect; `None` blocks at the OS's discretion.
    pub fn connect_timeout(mut self, t: impl Into<Option<Duration>>) -> Self {
        self.config.connect_timeout = t.into();
        self
    }

    /// Bound each blocking read of the response stream.
    pub fn read_timeout(mut self, t: impl Into<Option<Duration>>) -> Self {
        self.config.read_timeout = t.into();
        self
    }

    /// Bound each blocking socket write.
    pub fn write_timeout(mut self, t: impl Into<Option<Duration>>) -> Self {
        self.config.write_timeout = t.into();
        self
    }

    /// Finish building.
    pub fn build(self) -> ClientConfig {
        self.config
    }
}

/// A blocking connection to a [`crate::NetServer`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The resolved address actually connected to, kept so
    /// [`Client::reconnect`] can redial after a server restart.
    addr: SocketAddr,
    config: ClientConfig,
}

impl Client {
    /// Connect to a serving address with default timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit timeouts. When the address resolves to
    /// several candidates they are tried in order; the error of the
    /// last candidate is reported.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match Client::dial(candidate, &config) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no addresses")))
    }

    fn dial(addr: SocketAddr, config: &ClientConfig) -> io::Result<Client> {
        let stream = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        let reader_stream = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
            addr,
            config: config.clone(),
        })
    }

    /// Drop the current connection and dial the same address again —
    /// the recovery step after [`ClientError::ConnectionClosed`] (e.g.
    /// across a server restart).
    pub fn reconnect(&mut self) -> io::Result<()> {
        *self = Client::dial(self.addr, &self.config)?;
        Ok(())
    }

    /// The resolved peer address this client dials.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Send one request and block for its outcome.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(
            &mut self.writer,
            FrameKind::Request,
            &encode_request(request),
        )?;
        match read_frame(&mut self.reader)? {
            Some(frame) if frame.kind == FrameKind::Response => {
                Ok(decode_response(&frame.payload)?)
            }
            Some(frame) if frame.kind == FrameKind::Error => {
                Err(ClientError::Remote(decode_fault(&frame.payload)?))
            }
            Some(frame) => Err(ClientError::Wire(WireError::Malformed(format!(
                "unexpected {:?} frame in reply",
                frame.kind
            )))),
            None => Err(ClientError::ConnectionClosed),
        }
    }

    /// Durably enqueue a mutation and return its task id immediately
    /// (the 202-accepted write model). Track it with
    /// [`Client::task_status`] or [`Client::wait_for_task`].
    pub fn enqueue(&mut self, kind: TaskKind) -> Result<TaskId, ClientError> {
        match self.call(&Request::EnqueueTask { kind })? {
            Response::TaskAccepted(id) => Ok(id),
            other => Err(ClientError::Wire(WireError::Malformed(format!(
                "expected TaskAccepted, got {other:?}"
            )))),
        }
    }

    /// Look up one task by id. Unknown ids answer a 404 fault.
    pub fn task_status(&mut self, id: TaskId) -> Result<Task, ClientError> {
        match self.call(&Request::TaskStatus { id })? {
            Response::TaskInfo(task) => Ok(task),
            other => Err(ClientError::Wire(WireError::Malformed(format!(
                "expected TaskInfo, got {other:?}"
            )))),
        }
    }

    /// List tasks matching `filter`, ascending by id.
    pub fn list_tasks(&mut self, filter: TaskFilter) -> Result<Vec<Task>, ClientError> {
        match self.call(&Request::ListTasks { filter })? {
            Response::TaskList(tasks) => Ok(tasks),
            other => Err(ClientError::Wire(WireError::Malformed(format!(
                "expected TaskList, got {other:?}"
            )))),
        }
    }

    /// Poll until task `id` reaches a terminal status (succeeded or
    /// failed — inspect the returned task) or `timeout` elapses, backing
    /// off between probes. Timeout surfaces as a wire I/O error
    /// classifying as [`ErrorKind::Timeout`].
    pub fn wait_for_task(&mut self, id: TaskId, timeout: Duration) -> Result<Task, ClientError> {
        let start = Instant::now();
        let mut backoff = Duration::from_millis(1);
        loop {
            let task = self.task_status(id)?;
            if task.status.is_terminal() {
                return Ok(task);
            }
            if start.elapsed() >= timeout {
                return Err(ClientError::Wire(WireError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("task {id} not terminal within {timeout:?}"),
                ))));
            }
            std::thread::sleep(backoff.min(timeout.saturating_sub(start.elapsed())));
            backoff = (backoff * 2).min(Duration::from_millis(50));
        }
    }

    /// Enqueue a mutation and block until it executes — the convenience
    /// that replaces the deprecated synchronous write requests. A task
    /// that executed but failed comes back as a synthesized
    /// [`ClientError::Remote`] fault carrying the task's error.
    pub fn write_and_wait(
        &mut self,
        kind: TaskKind,
        timeout: Duration,
    ) -> Result<Task, ClientError> {
        let id = self.enqueue(kind)?;
        let task = self.wait_for_task(id, timeout)?;
        if let coupling::tasks::TaskStatus::Failed { error } = &task.status {
            return Err(ClientError::Remote(WireFault {
                status: Status::Internal,
                message: format!("task {id} failed: {error}"),
            }));
        }
        Ok(task)
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peer = self.reader.get_ref().peer_addr();
        f.debug_struct("Client").field("peer", &peer).finish()
    }
}
