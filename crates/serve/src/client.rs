//! A small blocking client for the wire protocol.
//!
//! One [`Client`] owns one TCP connection and speaks strict
//! request/response: [`Client::call`] writes a request frame, then
//! blocks for the matching response or error frame. Open one client per
//! thread for concurrency — that mirrors how the server allocates a
//! reader thread per connection.

use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use coupling::ErrorKind;

use crate::request::{Request, Response};
use crate::wire::{
    decode_fault, decode_response, encode_request, read_frame, write_frame, FrameKind, Status,
    WireError, WireFault,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing layer failed (I/O error, bad frame,
    /// undecodable payload).
    Wire(WireError),
    /// The server answered with an error frame.
    Remote(WireFault),
    /// The server closed the connection without answering.
    ConnectionClosed,
}

impl ClientError {
    /// The wire status, when the server answered with one.
    pub fn status(&self) -> Option<Status> {
        match self {
            ClientError::Remote(fault) => Some(fault.status),
            _ => None,
        }
    }

    /// The coupling-taxonomy classification of this failure, mirroring
    /// what an in-process caller would read from
    /// [`coupling::CouplingError::kind`]. Transport failures classify
    /// as [`ErrorKind::Io`]; undecodable frames as [`ErrorKind::Parse`].
    pub fn kind(&self) -> ErrorKind {
        match self {
            ClientError::Wire(WireError::Io(_)) => ErrorKind::Io,
            ClientError::Wire(_) => ErrorKind::Parse,
            ClientError::Remote(fault) => fault.status.kind(),
            ClientError::ConnectionClosed => ErrorKind::Io,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire failure: {e}"),
            ClientError::Remote(fault) => write!(f, "server error {fault}"),
            ClientError::ConnectionClosed => f.write_str("connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a [`crate::NetServer`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a serving address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader_stream = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request and block for its outcome.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(
            &mut self.writer,
            FrameKind::Request,
            &encode_request(request),
        )?;
        match read_frame(&mut self.reader)? {
            Some(frame) if frame.kind == FrameKind::Response => {
                Ok(decode_response(&frame.payload)?)
            }
            Some(frame) if frame.kind == FrameKind::Error => {
                Err(ClientError::Remote(decode_fault(&frame.payload)?))
            }
            Some(frame) => Err(ClientError::Wire(WireError::Malformed(format!(
                "unexpected {:?} frame in reply",
                frame.kind
            )))),
            None => Err(ClientError::ConnectionClosed),
        }
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peer = self.reader.get_ref().peer_addr();
        f.debug_struct("Client").field("peer", &peer).finish()
    }
}
