//! Typed requests and responses.
//!
//! Every client interaction with a [`crate::Server`] is one of these
//! request shapes; the server maps each onto the coupling API and
//! answers with the matching [`Response`] arm. Keeping the protocol an
//! enum (rather than closures) is what lets requests cross thread —
//! and eventually process/network — boundaries.

use coupling::tasks::{Task, TaskFilter, TaskId, TaskKind};
use coupling::{MixedStrategy, ResultOrigin};
use irs::QueryGlobals;
use oodb::Oid;

/// A typed request against the document system.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Rank collection members for an IRS query
    /// ([`coupling::Collection::get_irs_result_with_origin`]).
    IrsQuery {
        /// Target collection name.
        collection: String,
        /// IRS query text (`#and(..)`, plain terms, …).
        query: String,
    },
    /// A mixed structure/content query: objects of `class` whose IRS
    /// value for `irs_query` exceeds `threshold`, evaluated under
    /// `strategy` ([`coupling::mixed::evaluate_mixed`]).
    MixedQuery {
        /// Target collection name.
        collection: String,
        /// Structural condition: membership in this class.
        class: String,
        /// IRS (content) query.
        irs_query: String,
        /// IRS-value threshold.
        threshold: f64,
        /// Requested evaluation order.
        strategy: MixedStrategy,
    },
    /// The IRS value of one object (`getIRSValue`, with automatic
    /// fall-through to `deriveIRSValue` for unrepresented objects).
    GetIrsValue {
        /// Target collection name.
        collection: String,
        /// IRS query.
        query: String,
        /// The object.
        oid: Oid,
    },
    /// Replace an object's text and propagate the modification to the
    /// named collections, blocking until the write executes.
    #[deprecated(note = "synchronous write shape — use Request::EnqueueTask with \
                TaskKind::UpdateText (or Client::write_and_wait) instead")]
    UpdateText {
        /// The object whose `text` attribute changes.
        oid: Oid,
        /// The new text.
        text: String,
        /// Collections whose propagators must record the change.
        collections: Vec<String>,
    },
    /// Run `indexObjects` with a specification query, blocking until the
    /// write executes.
    #[deprecated(note = "synchronous write shape — use Request::EnqueueTask with \
                TaskKind::IndexObjects (or Client::write_and_wait) instead")]
    IndexObjects {
        /// Target collection name.
        collection: String,
        /// OODBMS specification query.
        spec_query: String,
    },
    /// Liveness probe: answered with [`Response::Pong`] without touching
    /// the document system. Clients use it for health checks and as the
    /// cheap trial call when a circuit breaker goes half-open.
    Ping,
    /// One partition's corpus statistics for `query` — the first leg of
    /// the scatter/gather global-statistics exchange
    /// ([`coupling::Collection::query_globals`]).
    TermStats {
        /// Target collection name.
        collection: String,
        /// IRS query text.
        query: String,
    },
    /// Rank this partition's members for `query` under *supplied* merged
    /// corpus statistics — the second leg of scatter/gather
    /// ([`coupling::Collection::get_irs_result_global`]). Answered with
    /// [`Response::IrsKeyed`]: raw IRS keys, because the router's merge
    /// must tie-break exactly as the single-node engine does (by key
    /// string, not by numeric OID).
    IrsQueryGlobal {
        /// Target collection name.
        collection: String,
        /// IRS query text.
        query: String,
        /// Result limit; `u64::MAX` means unlimited.
        k: u64,
        /// Merged corpus statistics from every partition.
        globals: QueryGlobals,
    },
    /// Durably enqueue a mutation as an update task and return its id
    /// immediately ([`Response::TaskAccepted`], wire status 202) — the
    /// task-handle write model that replaces the synchronous write
    /// shapes. Progress is observed via [`Request::TaskStatus`] /
    /// [`Request::ListTasks`].
    EnqueueTask {
        /// The mutation to enqueue.
        kind: TaskKind,
    },
    /// Look up one task by id ([`Response::TaskInfo`]; unknown ids
    /// answer 404).
    TaskStatus {
        /// The task id returned by [`Response::TaskAccepted`].
        id: TaskId,
    },
    /// List tasks matching a filter ([`Response::TaskList`]).
    ListTasks {
        /// Status/collection predicate; empty matches all.
        filter: TaskFilter,
    },
}

impl Request {
    /// True for requests that mutate the system — these funnel into the
    /// task scheduler (and are refused outright on read-only replicas).
    #[allow(deprecated)]
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::UpdateText { .. } | Request::IndexObjects { .. } | Request::EnqueueTask { .. }
        )
    }

    /// Short label for metrics/debugging.
    #[allow(deprecated)]
    pub fn label(&self) -> &'static str {
        match self {
            Request::IrsQuery { .. } => "irs_query",
            Request::MixedQuery { .. } => "mixed_query",
            Request::GetIrsValue { .. } => "get_irs_value",
            Request::UpdateText { .. } => "update_text",
            Request::IndexObjects { .. } => "index_objects",
            Request::Ping => "ping",
            Request::TermStats { .. } => "term_stats",
            Request::IrsQueryGlobal { .. } => "irs_query_global",
            Request::EnqueueTask { .. } => "enqueue_task",
            Request::TaskStatus { .. } => "task_status",
            Request::ListTasks { .. } => "list_tasks",
        }
    }
}

/// A successful answer to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ranked objects, descending by IRS value (ties by OID).
    IrsResult {
        /// `(object, IRS value)` pairs.
        hits: Vec<(Oid, f64)>,
        /// Where the answer came from (fresh / buffered / stale).
        origin: ResultOrigin,
    },
    /// Mixed-query outcome.
    Mixed {
        /// Matching objects, ascending by OID.
        oids: Vec<Oid>,
        /// Strategy actually executed (degraded serving may fall back).
        strategy: MixedStrategy,
        /// Where the content result came from.
        origin: ResultOrigin,
    },
    /// A single IRS value.
    Value(f64),
    /// Text updated; the number of collections that recorded it.
    Updated {
        /// Collections whose propagators recorded the modification.
        collections: usize,
    },
    /// `indexObjects` ran; the number of objects (re-)indexed.
    Indexed {
        /// Objects indexed.
        objects: usize,
    },
    /// The answer to [`Request::Ping`].
    Pong,
    /// The answer to [`Request::TermStats`].
    TermStats(QueryGlobals),
    /// The answer to [`Request::IrsQueryGlobal`]: `(IRS key, score)`
    /// pairs sorted exactly as the top-k engine selects them — score
    /// descending, ties by ascending key string — so the router can merge
    /// partition lists with the same comparator and stay bit-identical to
    /// single-node evaluation.
    IrsKeyed {
        /// `(IRS document key, score)` pairs.
        hits: Vec<(String, f64)>,
    },
    /// The task was durably enqueued (202-style accepted); poll
    /// [`Request::TaskStatus`] or wait for it with
    /// [`crate::client::Client::wait_for_task`].
    TaskAccepted(TaskId),
    /// The answer to [`Request::TaskStatus`].
    TaskInfo(Task),
    /// The answer to [`Request::ListTasks`], ascending by task id.
    TaskList(Vec<Task>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_requests_classify() {
        let enqueue = Request::EnqueueTask {
            kind: TaskKind::Flush {
                collection: "c".into(),
            },
        };
        assert!(enqueue.is_write(), "enqueue mutates — replicas refuse it");
        assert_eq!(enqueue.label(), "enqueue_task");
        let status = Request::TaskStatus { id: 7 };
        assert!(!status.is_write(), "status probe is a read");
        assert_eq!(status.label(), "task_status");
        let list = Request::ListTasks {
            filter: TaskFilter::default(),
        };
        assert!(!list.is_write(), "listing is a read");
        assert_eq!(list.label(), "list_tasks");
    }

    #[test]
    #[allow(deprecated)]
    fn write_classification() {
        assert!(!Request::IrsQuery {
            collection: "c".into(),
            query: "q".into()
        }
        .is_write());
        assert!(Request::UpdateText {
            oid: Oid(1),
            text: "t".into(),
            collections: vec![]
        }
        .is_write());
        assert!(Request::IndexObjects {
            collection: "c".into(),
            spec_query: "ACCESS p FROM p IN PARA".into()
        }
        .is_write());
        assert_eq!(
            Request::GetIrsValue {
                collection: "c".into(),
                query: "q".into(),
                oid: Oid(1)
            }
            .label(),
            "get_irs_value"
        );
        assert!(!Request::Ping.is_write(), "pings ride the read lane");
        assert_eq!(Request::Ping.label(), "ping");
        let stats = Request::TermStats {
            collection: "c".into(),
            query: "q".into(),
        };
        assert!(!stats.is_write(), "stats exchange is a read");
        assert_eq!(stats.label(), "term_stats");
        let global = Request::IrsQueryGlobal {
            collection: "c".into(),
            query: "q".into(),
            k: 10,
            globals: QueryGlobals {
                n_docs: 0,
                total_tokens: 0,
                min_doc_len: 0,
                max_doc_len: 0,
                terms: vec![],
            },
        };
        assert!(!global.is_write(), "scattered search is a read");
        assert_eq!(global.label(), "irs_query_global");
    }
}
