//! Typed requests and responses.
//!
//! Every client interaction with a [`crate::Server`] is one of these
//! request shapes; the server maps each onto the coupling API and
//! answers with the matching [`Response`] arm. Keeping the protocol an
//! enum (rather than closures) is what lets requests cross thread —
//! and eventually process/network — boundaries.

use coupling::{MixedStrategy, ResultOrigin};
use oodb::Oid;

/// A typed request against the document system.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Rank collection members for an IRS query
    /// ([`coupling::Collection::get_irs_result_with_origin`]).
    IrsQuery {
        /// Target collection name.
        collection: String,
        /// IRS query text (`#and(..)`, plain terms, …).
        query: String,
    },
    /// A mixed structure/content query: objects of `class` whose IRS
    /// value for `irs_query` exceeds `threshold`, evaluated under
    /// `strategy` ([`coupling::mixed::evaluate_mixed`]).
    MixedQuery {
        /// Target collection name.
        collection: String,
        /// Structural condition: membership in this class.
        class: String,
        /// IRS (content) query.
        irs_query: String,
        /// IRS-value threshold.
        threshold: f64,
        /// Requested evaluation order.
        strategy: MixedStrategy,
    },
    /// The IRS value of one object (`getIRSValue`, with automatic
    /// fall-through to `deriveIRSValue` for unrepresented objects).
    GetIrsValue {
        /// Target collection name.
        collection: String,
        /// IRS query.
        query: String,
        /// The object.
        oid: Oid,
    },
    /// Replace an object's text and propagate the modification to the
    /// named collections (write lane).
    UpdateText {
        /// The object whose `text` attribute changes.
        oid: Oid,
        /// The new text.
        text: String,
        /// Collections whose propagators must record the change.
        collections: Vec<String>,
    },
    /// Run `indexObjects` with a specification query (write lane).
    IndexObjects {
        /// Target collection name.
        collection: String,
        /// OODBMS specification query.
        spec_query: String,
    },
    /// Liveness probe: answered with [`Response::Pong`] without touching
    /// the document system. Clients use it for health checks and as the
    /// cheap trial call when a circuit breaker goes half-open.
    Ping,
}

impl Request {
    /// True for requests that mutate the system — these serialise
    /// through the dedicated writer lane.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::UpdateText { .. } | Request::IndexObjects { .. }
        )
    }

    /// Short label for metrics/debugging.
    pub fn label(&self) -> &'static str {
        match self {
            Request::IrsQuery { .. } => "irs_query",
            Request::MixedQuery { .. } => "mixed_query",
            Request::GetIrsValue { .. } => "get_irs_value",
            Request::UpdateText { .. } => "update_text",
            Request::IndexObjects { .. } => "index_objects",
            Request::Ping => "ping",
        }
    }
}

/// A successful answer to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ranked objects, descending by IRS value (ties by OID).
    IrsResult {
        /// `(object, IRS value)` pairs.
        hits: Vec<(Oid, f64)>,
        /// Where the answer came from (fresh / buffered / stale).
        origin: ResultOrigin,
    },
    /// Mixed-query outcome.
    Mixed {
        /// Matching objects, ascending by OID.
        oids: Vec<Oid>,
        /// Strategy actually executed (degraded serving may fall back).
        strategy: MixedStrategy,
        /// Where the content result came from.
        origin: ResultOrigin,
    },
    /// A single IRS value.
    Value(f64),
    /// Text updated; the number of collections that recorded it.
    Updated {
        /// Collections whose propagators recorded the modification.
        collections: usize,
    },
    /// `indexObjects` ran; the number of objects (re-)indexed.
    Indexed {
        /// Objects indexed.
        objects: usize,
    },
    /// The answer to [`Request::Ping`].
    Pong,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_classification() {
        assert!(!Request::IrsQuery {
            collection: "c".into(),
            query: "q".into()
        }
        .is_write());
        assert!(Request::UpdateText {
            oid: Oid(1),
            text: "t".into(),
            collections: vec![]
        }
        .is_write());
        assert!(Request::IndexObjects {
            collection: "c".into(),
            spec_query: "ACCESS p FROM p IN PARA".into()
        }
        .is_write());
        assert_eq!(
            Request::GetIrsValue {
                collection: "c".into(),
                query: "q".into(),
                oid: Oid(1)
            }
            .label(),
            "get_irs_value"
        );
        assert!(!Request::Ping.is_write(), "pings ride the read lane");
        assert_eq!(Request::Ping.label(), "ping");
    }
}
