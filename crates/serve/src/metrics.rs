//! Per-request observability for the serving layer.
//!
//! Counters are lock-free atomics bumped on the request path; the
//! latency distribution is a fixed array of power-of-two microsecond
//! buckets, so recording is one `fetch_add` and percentile estimates
//! need no sorting. [`Metrics::snapshot`] turns the live counters into
//! an immutable [`MetricsSnapshot`] for reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use coupling::ResultOrigin;

/// Number of log2 latency buckets: bucket `i` holds requests whose
/// total latency (queue wait + execution) fell in `[2^i, 2^(i+1))`
/// microseconds. 40 buckets cover up to ~2^40 µs ≈ 12 days.
const BUCKETS: usize = 40;

/// Live counters of one [`crate::Server`]. Shared by all worker
/// threads; every field is updated with relaxed atomics.
#[derive(Debug)]
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_shutdown: AtomicU64,
    deadline_timeouts: AtomicU64,
    origin_fresh: AtomicU64,
    origin_buffered: AtomicU64,
    origin_stale: AtomicU64,
    origin_none: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
    latency_max_us: AtomicU64,
    latency_sum_us: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            deadline_timeouts: AtomicU64::new(0),
            origin_fresh: AtomicU64::new(0),
            origin_buffered: AtomicU64::new(0),
            origin_stale: AtomicU64::new(0),
            origin_none: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_max_us: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    pub(crate) fn request_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_rejected_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_rejected_shutdown(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_timed_out(&self) {
        self.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_completed(&self, latency: Duration, origin: Option<ResultOrigin>) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        // Every completion bumps exactly one origin counter — requests
        // without a result origin (writes, value probes) are counted
        // explicitly so the origin columns always sum to `completed`.
        let origin_counter = match origin {
            Some(ResultOrigin::Fresh) => &self.origin_fresh,
            Some(ResultOrigin::Buffered) => &self.origin_buffered,
            Some(ResultOrigin::Stale) => &self.origin_stale,
            None => &self.origin_none,
        };
        origin_counter.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Immutable snapshot of everything counted so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let buckets: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let completed = self.completed.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            deadline_timeouts: self.deadline_timeouts.load(Ordering::Relaxed),
            origin_fresh: self.origin_fresh.load(Ordering::Relaxed),
            origin_buffered: self.origin_buffered.load(Ordering::Relaxed),
            origin_stale: self.origin_stale.load(Ordering::Relaxed),
            origin_none: self.origin_none.load(Ordering::Relaxed),
            // Task counters live in the scheduler, not here; the server
            // overlays them via `with_tasks`.
            tasks_rejected: 0,
            tasks_failed: 0,
            tasks_succeeded: 0,
            task_batches: 0,
            tasks_merged: 0,
            task_queue_depth: 0,
            p50_us: percentile(&buckets, completed, 0.50),
            p90_us: percentile(&buckets, completed, 0.90),
            p99_us: percentile(&buckets, completed, 0.99),
            max_us: self.latency_max_us.load(Ordering::Relaxed),
            mean_us: if completed == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / completed as f64
            },
        }
    }
}

impl MetricsSnapshot {
    /// Overlay the task scheduler's counters (zero when the server has
    /// no scheduler, i.e. a read-only replica).
    pub(crate) fn with_tasks(mut self, stats: coupling::tasks::TaskQueueStats) -> MetricsSnapshot {
        self.tasks_rejected = stats.rejected;
        self.tasks_failed = stats.failed;
        self.tasks_succeeded = stats.succeeded;
        self.task_batches = stats.batches;
        self.tasks_merged = stats.merged;
        self.task_queue_depth = stats.depth;
        self
    }
}

/// Upper bound (µs) of the bucket containing quantile `q`, i.e. a
/// conservative percentile estimate with power-of-two resolution.
fn percentile(buckets: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << (i + 1).min(63);
        }
    }
    1u64 << 63
}

/// Point-in-time view of a server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted to a queue.
    pub submitted: u64,
    /// Requests that finished with `Ok`.
    pub completed: u64,
    /// Requests that finished with `Err` (other than rejection/timeout).
    pub failed: u64,
    /// Requests refused at admission because the queue was full.
    pub rejected_overload: u64,
    /// Requests refused because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Requests dropped because their deadline expired before a worker
    /// picked them up.
    pub deadline_timeouts: u64,
    /// Completed reads answered fresh from the IRS.
    pub origin_fresh: u64,
    /// Completed reads answered from the result buffer.
    pub origin_buffered: u64,
    /// Completed reads answered from the stale store (IRS down).
    pub origin_stale: u64,
    /// Completed requests with no result origin (writes and value
    /// probes). `origin_fresh + origin_buffered + origin_stale +
    /// origin_none == completed` always holds.
    pub origin_none: u64,
    /// Update tasks refused **at enqueue** (queue full or shutting
    /// down) — admission failures, before any work ran.
    pub tasks_rejected: u64,
    /// Update tasks that ran and **failed at execute** — distinct from
    /// `tasks_rejected` so overload and execution trouble are separable.
    pub tasks_failed: u64,
    /// Update tasks that ran and succeeded.
    pub tasks_succeeded: u64,
    /// Execution batches the scheduler claimed.
    pub task_batches: u64,
    /// Tasks that rode a batch beyond its head (executions saved by
    /// adjacent-task merging).
    pub tasks_merged: u64,
    /// Tasks currently enqueued or processing — the queue-depth gauge
    /// that makes overload visible *before* `Overloaded` fires.
    pub task_queue_depth: u64,
    /// Median latency upper bound, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency upper bound, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency upper bound, microseconds.
    pub p99_us: u64,
    /// Largest observed latency, microseconds.
    pub max_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_percentiles() {
        let m = Metrics::new();
        m.request_submitted();
        m.request_submitted();
        m.request_completed(Duration::from_micros(3), Some(ResultOrigin::Fresh));
        m.request_completed(Duration::from_micros(1000), Some(ResultOrigin::Buffered));
        m.request_rejected_overload();
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 2);
        assert_eq!(s.rejected_overload, 1);
        assert_eq!(s.origin_fresh, 1);
        assert_eq!(s.origin_buffered, 1);
        // 3 µs falls in [2,4) → upper bound 4; 1000 µs in [512,1024) → 1024.
        assert_eq!(s.p50_us, 4);
        assert_eq!(s.p99_us, 1024);
        assert_eq!(s.max_us, 1000);
        assert!((s.mean_us - 501.5).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.completed, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn sub_microsecond_latency_lands_in_first_bucket() {
        let m = Metrics::new();
        m.request_completed(Duration::from_nanos(10), None);
        let s = m.snapshot();
        assert_eq!(s.completed, 1);
        assert_eq!(s.p50_us, 2);
    }

    #[test]
    fn origin_counters_reconcile_with_completed() {
        let m = Metrics::new();
        m.request_completed(Duration::from_micros(1), Some(ResultOrigin::Fresh));
        m.request_completed(Duration::from_micros(1), Some(ResultOrigin::Stale));
        m.request_completed(Duration::from_micros(1), None); // a write
        m.request_completed(Duration::from_micros(1), None); // a value probe
        let s = m.snapshot();
        assert_eq!(s.origin_none, 2);
        assert_eq!(
            s.origin_fresh + s.origin_buffered + s.origin_stale + s.origin_none,
            s.completed
        );
    }
}
