//! Read replicas of the IRS, and the wire transport that reaches them.
//!
//! A [`ReplicaServer`] is the serving side: it freezes every collection
//! of a [`DocumentSystem`] ([`coupling::Collection::set_read_only`]),
//! starts the server in read-only mode (writes are rejected at
//! admission), and binds the TCP front-end — a replica answers
//! `search`/`getIRSValue`/`ping` and nothing else, so its index can
//! never fork from the primary it was built from.
//!
//! [`WireTransport`] is the client side: one lazy, self-healing
//! connection per replica implementing
//! [`coupling::remote::ReplicaTransport`], which plugs straight into the
//! hedged fan-out of [`coupling::remote::RemoteIrs`]. Transport failures
//! drop the cached connection (the next attempt redials) and surface as
//! [`CouplingError::Remote`] carrying the wire classification, so the
//! fan-out's failover/breaker logic sees exactly the taxonomy it ranks
//! replicas by.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::Path;
use std::sync::Mutex;

use coupling::remote::ReplicaTransport;
use coupling::{open_system, CouplingError, DocumentSystem, ErrorKind, ResultOrigin};
use oodb::Oid;

use crate::client::{Client, ClientConfig, ClientError};
use crate::metrics::MetricsSnapshot;
use crate::net::NetServer;
use crate::request::{Request, Response};
use crate::server::{Server, ServerConfig};

/// A TCP server exposing one frozen copy of a document system for
/// reads.
#[derive(Debug)]
pub struct ReplicaServer {
    net: NetServer,
}

impl ReplicaServer {
    /// Freeze `sys` and serve it read-only on `addr` (use port 0 for an
    /// ephemeral port) with default server tuning.
    pub fn serve(sys: DocumentSystem, addr: impl ToSocketAddrs) -> io::Result<ReplicaServer> {
        ReplicaServer::serve_with(sys, ServerConfig::default(), addr)
    }

    /// [`ReplicaServer::serve`] with explicit tuning. The configuration
    /// is forced read-only regardless of what was passed in: a replica
    /// that accepted writes would silently fork from its primary.
    pub fn serve_with(
        sys: DocumentSystem,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<ReplicaServer> {
        for name in sys.collection_names() {
            if let Ok(mut coll) = sys.collection_mut(&name) {
                coll.set_read_only(true);
            }
        }
        let server = Server::start(sys, config.read_only(true));
        Ok(ReplicaServer {
            net: NetServer::bind(server, addr)?,
        })
    }

    /// Open a system previously saved with [`coupling::save_system`]
    /// and serve it as a replica — the restart path: replicas recover
    /// their index from the primary's snapshot directory.
    pub fn open(dir: impl AsRef<Path>, addr: impl ToSocketAddrs) -> io::Result<ReplicaServer> {
        let sys = open_system(dir.as_ref()).map_err(|e| io::Error::other(e.to_string()))?;
        ReplicaServer::serve(sys, addr)
    }

    /// The bound address clients (or a [`crate::chaos::ChaosProxy`] in
    /// front) dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.net.local_addr()
    }

    /// Request metrics of the underlying server.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.net.metrics()
    }

    /// Graceful shutdown (drains in-flight reads). Returns final
    /// metrics.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.net.shutdown()
    }
}

/// Classify a local socket failure the way [`ClientError::kind`] would.
fn io_kind(e: &io::Error) -> ErrorKind {
    match e.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ErrorKind::Timeout,
        _ => ErrorKind::Io,
    }
}

/// One replica connection for the hedged fan-out: lazily dialed,
/// redialed after transport failures, safe to share across the
/// fan-out's attempt threads.
#[derive(Debug)]
pub struct WireTransport {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Mutex<Option<Client>>,
}

impl WireTransport {
    /// A transport dialing `addr` with default [`ClientConfig`] bounds.
    pub fn new(addr: SocketAddr) -> WireTransport {
        WireTransport::with_config(addr, ClientConfig::default())
    }

    /// A transport with explicit socket bounds. The hedging layer's
    /// per-attempt deadline abandons slow attempts, but the abandoned
    /// thread itself only unblocks when these socket timeouts fire —
    /// keep them finite.
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> WireTransport {
        WireTransport {
            addr,
            config,
            conn: Mutex::new(None),
        }
    }

    /// The replica address this transport dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn call(&self, request: &Request) -> coupling::Result<Response> {
        let mut guard = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            let client = Client::connect_with(self.addr, self.config.clone()).map_err(|e| {
                CouplingError::Remote {
                    kind: io_kind(&e),
                    message: format!("replica {}: connect failed: {e}", self.addr),
                }
            })?;
            *guard = Some(client);
        }
        let client = guard.as_mut().expect("connection just ensured");
        match client.call(request) {
            Ok(response) => Ok(response),
            Err(err) => {
                let kind = err.kind();
                // Error *frames* leave the connection in sync — keep it.
                // Anything else (I/O, framing desync, close) poisons the
                // stream: drop it so the next attempt redials.
                if !matches!(err, ClientError::Remote(_)) {
                    *guard = None;
                }
                Err(CouplingError::Remote {
                    kind,
                    message: format!("replica {}: {err}", self.addr),
                })
            }
        }
    }

    fn unexpected(&self, what: &str, response: &Response) -> CouplingError {
        CouplingError::Remote {
            kind: ErrorKind::Parse,
            message: format!(
                "replica {}: unexpected response to {what}: {response:?}",
                self.addr
            ),
        }
    }
}

impl ReplicaTransport for WireTransport {
    fn search(
        &self,
        collection: &str,
        query: &str,
    ) -> coupling::Result<(Vec<(Oid, f64)>, ResultOrigin)> {
        let response = self.call(&Request::IrsQuery {
            collection: collection.into(),
            query: query.into(),
        })?;
        match response {
            Response::IrsResult { hits, origin } => Ok((hits, origin)),
            other => Err(self.unexpected("search", &other)),
        }
    }

    fn value(&self, collection: &str, query: &str, oid: Oid) -> coupling::Result<f64> {
        let response = self.call(&Request::GetIrsValue {
            collection: collection.into(),
            query: query.into(),
            oid,
        })?;
        match response {
            Response::Value(v) => Ok(v),
            other => Err(self.unexpected("value", &other)),
        }
    }

    fn ping(&self) -> coupling::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(self.unexpected("ping", &other)),
        }
    }

    fn term_stats(&self, collection: &str, query: &str) -> coupling::Result<irs::QueryGlobals> {
        let response = self.call(&Request::TermStats {
            collection: collection.into(),
            query: query.into(),
        })?;
        match response {
            Response::TermStats(globals) => Ok(globals),
            other => Err(self.unexpected("term_stats", &other)),
        }
    }

    fn search_global(
        &self,
        collection: &str,
        query: &str,
        k: usize,
        globals: &irs::QueryGlobals,
    ) -> coupling::Result<Vec<(String, f64)>> {
        let response = self.call(&Request::IrsQueryGlobal {
            collection: collection.into(),
            query: query.into(),
            k: u64::try_from(k).unwrap_or(u64::MAX),
            globals: globals.clone(),
        })?;
        match response {
            Response::IrsKeyed { hits } => Ok(hits),
            other => Err(self.unexpected("search_global", &other)),
        }
    }
}
