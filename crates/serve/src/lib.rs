#![warn(missing_docs)]

//! `serve` — a concurrent request front-end for the OODBMS–IRS
//! coupling.
//!
//! The paper's document system (crate [`coupling`]) is a library: one
//! caller, one thread. Real document servers sit behind many clients,
//! so this crate adds the serving layer the paper leaves implicit —
//! without touching the coupling semantics underneath:
//!
//! * **Typed protocol** — [`Request`] / [`Response`] cover the
//!   coupling's query surface (`getIRSResult`, mixed queries,
//!   `getIRSValue`) and its update surface (text modification with
//!   propagation, `indexObjects`).
//! * **Thread-pool execution** — reads fan out across a worker pool
//!   under the system's shared read lock; writes become durable
//!   [`coupling::tasks`] entries executed by the scheduler's single
//!   executor thread, which owns the update [`coupling::Propagator`]s
//!   and merges adjacent compatible tasks into shared batches.
//! * **Asynchronous writes** — [`Request::EnqueueTask`] answers
//!   immediately with a task id (wire status 202); progress is observed
//!   via [`Request::TaskStatus`] / [`Request::ListTasks`] or awaited
//!   with [`Client::write_and_wait`]. The old synchronous write shapes
//!   are deprecated and now ride the same queue.
//! * **Admission control** — bounded queues reject excess load
//!   immediately ([`coupling::ErrorKind::Overloaded`]) instead of
//!   building unbounded backlogs.
//! * **Deadlines** — per-request timeouts
//!   ([`coupling::ErrorKind::Timeout`]) compose with the coupling's
//!   retry/circuit-breaker layer, which keeps operating per IRS call.
//! * **Graceful shutdown** — [`Server::shutdown`] drains admitted
//!   requests and flushes (journaled) propagation logs before joining
//!   the pool.
//! * **Observability** — [`Server::metrics`] returns latency
//!   percentiles, queue/admission counters, and
//!   [`coupling::ResultOrigin`] counts.
//! * **Wire protocol** — [`NetServer`] binds a TCP listener over the
//!   same machinery: length-prefixed CRC-checked frames ([`wire`]), a
//!   binary codec for [`Request`]/[`Response`], HTTP-idiom
//!   [`wire::Status`] codes for errors (429 overloaded, 503 shutting
//!   down, 504 deadline expired), and a blocking [`Client`]. This is
//!   the paper's loose coupling (Fig. 1, alternative 3) as a real
//!   network boundary.
//!
//! ```
//! use coupling::prelude::*;
//! use serve::{Request, Response, Server, ServerConfig};
//!
//! let mut sys = DocumentSystem::new();
//! sys.load_sgml("<MMFDOC><DOCTITLE>Telnet</DOCTITLE>\
//!                <PARA>telnet is remote login</PARA></MMFDOC>").unwrap();
//! sys.create_collection("collPara", CollectionSetup::builder().build()).unwrap();
//! sys.index_collection("collPara", "ACCESS p FROM p IN PARA").unwrap();
//!
//! let server = Server::start(sys, ServerConfig::default().read_workers(2));
//! let response = server.call(Request::IrsQuery {
//!     collection: "collPara".into(),
//!     query: "telnet".into(),
//! }).unwrap();
//! assert!(matches!(response, Response::IrsResult { ref hits, .. } if !hits.is_empty()));
//! server.shutdown();
//! ```

pub mod chaos;
pub mod client;
pub mod metrics;
pub mod net;
pub mod queue;
pub mod replica;
pub mod request;
pub mod server;
pub mod wire;

pub use chaos::{ChaosMode, ChaosPlan, ChaosProxy};
pub use client::{Client, ClientConfig, ClientConfigBuilder, ClientError};
pub use metrics::{Metrics, MetricsSnapshot};
pub use net::NetServer;
pub use queue::{BoundedQueue, PushError};
pub use replica::{ReplicaServer, WireTransport};
pub use request::{Request, Response};
pub use server::{Server, ServerConfig, ServerConfigBuilder, Ticket};
pub use wire::{Status, WireError, WireFault};
