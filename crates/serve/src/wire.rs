//! The wire protocol: framing and a binary codec for the typed
//! [`Request`]/[`Response`] protocol.
//!
//! This is the paper's loose coupling (Fig. 1, alternative 3) made
//! literal: the IRS front-end becomes reachable across a network
//! boundary, so requests and responses must survive a byte stream that
//! can be truncated, corrupted, or hostile. Every frame therefore
//! carries a magic number, a protocol version, a length capped at
//! [`MAX_FRAME_LEN`], and a CRC-32 of the payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic          b"OIRS"
//!      4     1  version        1
//!      5     1  kind           0 = request, 1 = response, 2 = error
//!      6     4  payload length little-endian, <= MAX_FRAME_LEN
//!     10     4  payload CRC-32 little-endian (IEEE, as the journal uses)
//!     14   len  payload
//! ```
//!
//! The payload codec is hand-rolled (the workspace deliberately carries
//! no serde): little-endian fixed-width integers, `f64` as IEEE-754
//! bits, strings and sequences length-prefixed with `u32`. Decoding is
//! strict — trailing bytes, truncated fields, unknown tags, and
//! out-of-range discriminants are all [`WireError::Malformed`], never a
//! panic.
//!
//! Failures cross the wire as an *error frame* whose payload is a
//! [`WireFault`]: a [`Status`] code in the HTTP idiom (429 overloaded,
//! 503 shutting down, 504 deadline expired, 400 parse failure, …) plus
//! the server's error message. [`Status::for_error`] defines the
//! mapping from the coupling's [`ErrorKind`] taxonomy.

use std::fmt;
use std::io::{self, Read, Write};

use coupling::tasks::{Task, TaskFilter, TaskKind, TaskStatus, TaskStatusKind};
use coupling::{CouplingError, ErrorKind, MixedStrategy, ResultOrigin};
use irs::persist::crc32;
use irs::{QueryGlobals, TermGlobals};
use oodb::Oid;

use crate::request::{Request, Response};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"OIRS";

/// Current protocol version. A server refuses frames from a different
/// version instead of guessing at their layout.
pub const VERSION: u8 = 1;

/// Hard cap on a frame's payload length (8 MiB). A length field above
/// this is rejected *before* any allocation, so a hostile or corrupt
/// header cannot make the peer reserve gigabytes.
pub const MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

/// Bytes in a frame header (magic + version + kind + length + CRC).
pub const HEADER_LEN: usize = 14;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a frame could not be read, written, or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (including truncation mid-frame,
    /// which surfaces as `UnexpectedEof`).
    Io(io::Error),
    /// The first four bytes were not [`MAGIC`] — the peer is not
    /// speaking this protocol, or the stream lost sync.
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u8),
    /// The frame-kind byte is not a known [`FrameKind`].
    BadKind(u8),
    /// The declared (or attempted) payload length exceeds
    /// [`MAX_FRAME_LEN`]. Carried as `u64` so lengths beyond 4 GiB
    /// report exactly instead of truncating to a small, legal-looking
    /// number.
    Oversize(u64),
    /// The payload arrived but its CRC-32 does not match the header.
    BadCrc {
        /// CRC the header promised.
        expected: u32,
        /// CRC of the bytes actually received.
        found: u32,
    },
    /// The payload's bytes do not decode as the expected shape
    /// (truncated field, unknown tag, trailing garbage, bad UTF-8, …).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::BadCrc { expected, found } => {
                write!(
                    f,
                    "frame CRC mismatch: header {expected:08x}, payload {found:08x}"
                )
            }
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Result alias for wire operations.
pub type WireResult<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// What a frame's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A client-to-server [`Request`].
    Request,
    /// A server-to-client [`Response`].
    Response,
    /// A server-to-client [`WireFault`].
    Error,
}

impl FrameKind {
    fn as_byte(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
            FrameKind::Error => 2,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Response),
            2 => Some(FrameKind::Error),
            _ => None,
        }
    }
}

/// One decoded frame: kind plus raw payload (CRC already verified).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the payload encodes.
    pub kind: FrameKind,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Serialise one frame to `w`. The payload must fit under
/// [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> WireResult<()> {
    check_payload_len(payload.len())?;
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = kind.as_byte();
    header[6..10].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[10..14].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reject payload lengths over [`MAX_FRAME_LEN`], reporting the exact
/// offending length (in `u64`, so >4 GiB payloads do not truncate into
/// a small, legal-looking number).
fn check_payload_len(len: usize) -> WireResult<()> {
    if len > MAX_FRAME_LEN as usize {
        return Err(WireError::Oversize(len as u64));
    }
    Ok(())
}

/// Read one frame from `r`.
///
/// Returns `Ok(None)` on a clean close — EOF *between* frames. EOF in
/// the middle of a header or payload is a truncation and surfaces as
/// `WireError::Io(UnexpectedEof)`. The payload is only read once the
/// header validates (magic, version, kind, length cap), and is only
/// returned once its CRC matches.
pub fn read_frame(r: &mut impl Read) -> WireResult<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    // The first byte decides clean-close vs truncation.
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream truncated after {got} header bytes"),
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    if header[0..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&header[0..4]);
        return Err(WireError::BadMagic(m));
    }
    if header[4] != VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let kind = FrameKind::from_byte(header[5]).ok_or(WireError::BadKind(header[5]))?;
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversize(u64::from(len)));
    }
    let expected = u32::from_le_bytes(header[10..14].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let found = crc32(&payload);
    if found != expected {
        return Err(WireError::BadCrc { expected, found });
    }
    Ok(Some(Frame { kind, payload }))
}

// ---------------------------------------------------------------------
// Status codes
// ---------------------------------------------------------------------

/// Wire-level outcome classification, in the HTTP status idiom so the
/// numbers read familiarly in logs and dashboards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 202 — the write was durably enqueued as a task; the work itself
    /// has not run yet. Carried on success responses conceptually
    /// ([`Response::TaskAccepted`]), and present in the status space so
    /// logs and dashboards can distinguish accepted-async from
    /// executed-sync outcomes.
    Accepted,
    /// 400 — the request failed to parse (query syntax, bad spec).
    BadRequest,
    /// 404 — a named collection/object/class does not exist.
    NotFound,
    /// 429 — rejected by admission control (bounded queue full).
    Overloaded,
    /// 500 — an internal failure (I/O, corruption, API misuse).
    Internal,
    /// 502 — the IRS back-end is unavailable and no fallback masked it.
    IrsDown,
    /// 503 — the server is shutting down.
    ShuttingDown,
    /// 504 — the request's deadline expired before it was served.
    Timeout,
}

impl Status {
    /// The numeric code carried on the wire.
    pub fn code(self) -> u16 {
        match self {
            Status::Accepted => 202,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::Overloaded => 429,
            Status::Internal => 500,
            Status::IrsDown => 502,
            Status::ShuttingDown => 503,
            Status::Timeout => 504,
        }
    }

    /// Parse a numeric code back into a status.
    pub fn from_code(code: u16) -> Option<Status> {
        match code {
            202 => Some(Status::Accepted),
            400 => Some(Status::BadRequest),
            404 => Some(Status::NotFound),
            429 => Some(Status::Overloaded),
            500 => Some(Status::Internal),
            502 => Some(Status::IrsDown),
            503 => Some(Status::ShuttingDown),
            504 => Some(Status::Timeout),
            _ => None,
        }
    }

    /// The wire status for a coupling error.
    ///
    /// `Overloaded` and `ShuttingDown` share an [`ErrorKind`] but are
    /// distinct on the wire (retry-now vs go-away), so those variants
    /// are matched directly; everything else maps through the stable
    /// [`CouplingError::kind`] taxonomy.
    pub fn for_error(err: &CouplingError) -> Status {
        match err {
            CouplingError::Overloaded(_) => Status::Overloaded,
            CouplingError::ShuttingDown => Status::ShuttingDown,
            // A write sent to a read-only replica is the *client's*
            // mistake (wrong endpoint), and must classify as permanent
            // on the wire so a remote caller does not fail it over to
            // the next replica — which is just as read-only.
            CouplingError::Irs(irs::IrsError::ReadOnly(_)) => Status::BadRequest,
            _ => match err.kind() {
                ErrorKind::NotFound => Status::NotFound,
                ErrorKind::Overloaded => Status::Overloaded,
                ErrorKind::Timeout => Status::Timeout,
                ErrorKind::IrsDown => Status::IrsDown,
                ErrorKind::Parse => Status::BadRequest,
                ErrorKind::Io | ErrorKind::Other => Status::Internal,
                _ => Status::Internal,
            },
        }
    }

    /// The [`ErrorKind`] a client should treat this status as — the
    /// inverse of [`Status::for_error`], up to the taxonomy's own
    /// coarseness (`ShuttingDown` classifies as `Overloaded`, exactly
    /// as [`CouplingError::ShuttingDown.kind()`](CouplingError::kind)
    /// does in-process).
    pub fn kind(self) -> ErrorKind {
        match self {
            // Accepted is a success status; it never rides a fault
            // frame, so its error classification is the catch-all.
            Status::Accepted => ErrorKind::Other,
            Status::BadRequest => ErrorKind::Parse,
            Status::NotFound => ErrorKind::NotFound,
            Status::Overloaded | Status::ShuttingDown => ErrorKind::Overloaded,
            Status::Internal => ErrorKind::Other,
            Status::IrsDown => ErrorKind::IrsDown,
            Status::Timeout => ErrorKind::Timeout,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// An error as it crosses the wire: status plus the server's message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// Wire-level classification.
    pub status: Status,
    /// Human-readable detail (the server-side `Display` of the error).
    pub message: String,
}

impl WireFault {
    /// Build the fault frame payload for a server-side error.
    pub fn from_error(err: &CouplingError) -> WireFault {
        WireFault {
            status: Status::for_error(err),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.status.code(), self.message)
    }
}

// ---------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Strict payload reader: every accessor bounds-checks, and
/// [`Dec::finish`] rejects trailing bytes.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> WireResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(WireError::Malformed(format!(
                "truncated {what}: need {n} bytes at offset {}, payload is {}",
                self.pos,
                self.bytes.len()
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> WireResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> WireResult<u16> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, what: &str) -> WireResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> WireResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, what: &str) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn string(&mut self, what: &str) -> WireResult<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed(format!("{what} is not valid UTF-8")))
    }

    /// A `u32` element count, sanity-bounded by the bytes actually left
    /// (each element needs at least `min_elem_len` bytes), so a corrupt
    /// count cannot drive a huge allocation.
    fn count(&mut self, min_elem_len: usize, what: &str) -> WireResult<usize> {
        let n = self.u32(what)? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_elem_len.max(1)) > remaining {
            return Err(WireError::Malformed(format!(
                "{what} count {n} cannot fit in {remaining} remaining bytes"
            )));
        }
        Ok(n)
    }

    fn finish(self) -> WireResult<()> {
        if self.pos != self.bytes.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn strategy_byte(s: MixedStrategy) -> u8 {
    match s {
        MixedStrategy::Independent => 0,
        MixedStrategy::IrsFirst => 1,
    }
}

fn strategy_from(b: u8) -> WireResult<MixedStrategy> {
    match b {
        0 => Ok(MixedStrategy::Independent),
        1 => Ok(MixedStrategy::IrsFirst),
        other => Err(WireError::Malformed(format!(
            "unknown mixed strategy {other}"
        ))),
    }
}

fn origin_byte(o: ResultOrigin) -> u8 {
    match o {
        ResultOrigin::Fresh => 0,
        ResultOrigin::Buffered => 1,
        ResultOrigin::Stale => 2,
    }
}

fn origin_from(b: u8) -> WireResult<ResultOrigin> {
    match b {
        0 => Ok(ResultOrigin::Fresh),
        1 => Ok(ResultOrigin::Buffered),
        2 => Ok(ResultOrigin::Stale),
        other => Err(WireError::Malformed(format!(
            "unknown result origin {other}"
        ))),
    }
}

fn put_globals(buf: &mut Vec<u8>, g: &QueryGlobals) {
    put_u32(buf, g.n_docs);
    put_u64(buf, g.total_tokens);
    put_u32(buf, g.min_doc_len);
    put_u32(buf, g.max_doc_len);
    put_u32(buf, g.terms.len() as u32);
    for t in &g.terms {
        put_str(buf, &t.term);
        put_u32(buf, t.df);
        put_u32(buf, t.max_tf);
    }
}

fn decode_globals(d: &mut Dec<'_>) -> WireResult<QueryGlobals> {
    let n_docs = d.u32("n_docs")?;
    let total_tokens = d.u64("total_tokens")?;
    let min_doc_len = d.u32("min_doc_len")?;
    let max_doc_len = d.u32("max_doc_len")?;
    // Each term entry needs at least a string length prefix + df + max_tf.
    let n = d.count(12, "term stats list")?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        terms.push(TermGlobals {
            term: d.string("term")?,
            df: d.u32("df")?,
            max_tf: d.u32("max_tf")?,
        });
    }
    Ok(QueryGlobals {
        n_docs,
        total_tokens,
        min_doc_len,
        max_doc_len,
        terms,
    })
}

fn put_task_kind(buf: &mut Vec<u8>, kind: &TaskKind) {
    match kind {
        TaskKind::IndexObjects {
            collection,
            spec_query,
        } => {
            buf.push(0);
            put_str(buf, collection);
            put_str(buf, spec_query);
        }
        TaskKind::UpdateText {
            oid,
            text,
            collections,
        } => {
            buf.push(1);
            put_u64(buf, oid.0);
            put_str(buf, text);
            put_u32(buf, collections.len() as u32);
            for name in collections {
                put_str(buf, name);
            }
        }
        TaskKind::Flush { collection } => {
            buf.push(2);
            put_str(buf, collection);
        }
    }
}

fn decode_task_kind(d: &mut Dec<'_>) -> WireResult<TaskKind> {
    match d.u8("task kind tag")? {
        0 => Ok(TaskKind::IndexObjects {
            collection: d.string("collection")?,
            spec_query: d.string("spec query")?,
        }),
        1 => {
            let oid = Oid(d.u64("oid")?);
            let text = d.string("text")?;
            let n = d.count(4, "collection list")?;
            let mut collections = Vec::with_capacity(n);
            for _ in 0..n {
                collections.push(d.string("collection name")?);
            }
            Ok(TaskKind::UpdateText {
                oid,
                text,
                collections,
            })
        }
        2 => Ok(TaskKind::Flush {
            collection: d.string("collection")?,
        }),
        other => Err(WireError::Malformed(format!(
            "unknown task kind tag {other}"
        ))),
    }
}

fn status_kind_byte(k: TaskStatusKind) -> u8 {
    match k {
        TaskStatusKind::Enqueued => 0,
        TaskStatusKind::Processing => 1,
        TaskStatusKind::Succeeded => 2,
        TaskStatusKind::Failed => 3,
    }
}

fn status_kind_from(b: u8) -> WireResult<TaskStatusKind> {
    match b {
        0 => Ok(TaskStatusKind::Enqueued),
        1 => Ok(TaskStatusKind::Processing),
        2 => Ok(TaskStatusKind::Succeeded),
        3 => Ok(TaskStatusKind::Failed),
        other => Err(WireError::Malformed(format!("unknown task status {other}"))),
    }
}

fn put_task(buf: &mut Vec<u8>, task: &Task) {
    put_u64(buf, task.id);
    buf.push(status_kind_byte(task.status.kind()));
    if let TaskStatus::Failed { error } = &task.status {
        put_str(buf, error);
    }
    put_u64(buf, task.enqueued_at);
    match task.batch_id {
        Some(batch) => {
            buf.push(1);
            put_u64(buf, batch);
        }
        None => buf.push(0),
    }
    put_task_kind(buf, &task.kind);
}

fn decode_task(d: &mut Dec<'_>) -> WireResult<Task> {
    let id = d.u64("task id")?;
    let status = match status_kind_from(d.u8("task status")?)? {
        TaskStatusKind::Enqueued => TaskStatus::Enqueued,
        TaskStatusKind::Processing => TaskStatus::Processing,
        TaskStatusKind::Succeeded => TaskStatus::Succeeded,
        TaskStatusKind::Failed => TaskStatus::Failed {
            error: d.string("task error")?,
        },
    };
    let enqueued_at = d.u64("enqueued tick")?;
    let batch_id = match d.u8("batch flag")? {
        0 => None,
        1 => Some(d.u64("batch id")?),
        other => return Err(WireError::Malformed(format!("unknown batch flag {other}"))),
    };
    let kind = decode_task_kind(d)?;
    Ok(Task {
        id,
        kind,
        status,
        enqueued_at,
        batch_id,
    })
}

fn put_task_filter(buf: &mut Vec<u8>, filter: &TaskFilter) {
    match filter.status {
        // 0 = no status predicate; 1..=4 = the status kind + 1.
        Some(kind) => buf.push(status_kind_byte(kind) + 1),
        None => buf.push(0),
    }
    match &filter.collection {
        Some(name) => {
            buf.push(1);
            put_str(buf, name);
        }
        None => buf.push(0),
    }
}

fn decode_task_filter(d: &mut Dec<'_>) -> WireResult<TaskFilter> {
    let status = match d.u8("status filter")? {
        0 => None,
        b => Some(status_kind_from(b - 1)?),
    };
    let collection = match d.u8("collection filter flag")? {
        0 => None,
        1 => Some(d.string("collection filter")?),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown collection filter flag {other}"
            )))
        }
    };
    Ok(TaskFilter { status, collection })
}

/// Encode a request as a frame payload.
#[allow(deprecated)]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match req {
        Request::IrsQuery { collection, query } => {
            buf.push(0);
            put_str(&mut buf, collection);
            put_str(&mut buf, query);
        }
        Request::MixedQuery {
            collection,
            class,
            irs_query,
            threshold,
            strategy,
        } => {
            buf.push(1);
            put_str(&mut buf, collection);
            put_str(&mut buf, class);
            put_str(&mut buf, irs_query);
            put_f64(&mut buf, *threshold);
            buf.push(strategy_byte(*strategy));
        }
        Request::GetIrsValue {
            collection,
            query,
            oid,
        } => {
            buf.push(2);
            put_str(&mut buf, collection);
            put_str(&mut buf, query);
            put_u64(&mut buf, oid.0);
        }
        Request::UpdateText {
            oid,
            text,
            collections,
        } => {
            buf.push(3);
            put_u64(&mut buf, oid.0);
            put_str(&mut buf, text);
            put_u32(&mut buf, collections.len() as u32);
            for name in collections {
                put_str(&mut buf, name);
            }
        }
        Request::IndexObjects {
            collection,
            spec_query,
        } => {
            buf.push(4);
            put_str(&mut buf, collection);
            put_str(&mut buf, spec_query);
        }
        Request::Ping => {
            buf.push(5);
        }
        Request::TermStats { collection, query } => {
            buf.push(6);
            put_str(&mut buf, collection);
            put_str(&mut buf, query);
        }
        Request::IrsQueryGlobal {
            collection,
            query,
            k,
            globals,
        } => {
            buf.push(7);
            put_str(&mut buf, collection);
            put_str(&mut buf, query);
            put_u64(&mut buf, *k);
            put_globals(&mut buf, globals);
        }
        Request::EnqueueTask { kind } => {
            buf.push(8);
            put_task_kind(&mut buf, kind);
        }
        Request::TaskStatus { id } => {
            buf.push(9);
            put_u64(&mut buf, *id);
        }
        Request::ListTasks { filter } => {
            buf.push(10);
            put_task_filter(&mut buf, filter);
        }
    }
    buf
}

/// Decode a request frame payload. Strict: unknown tags, truncated
/// fields, and trailing bytes are all [`WireError::Malformed`].
#[allow(deprecated)]
pub fn decode_request(payload: &[u8]) -> WireResult<Request> {
    let mut d = Dec::new(payload);
    let req = match d.u8("request tag")? {
        0 => Request::IrsQuery {
            collection: d.string("collection")?,
            query: d.string("query")?,
        },
        1 => Request::MixedQuery {
            collection: d.string("collection")?,
            class: d.string("class")?,
            irs_query: d.string("irs query")?,
            threshold: d.f64("threshold")?,
            strategy: strategy_from(d.u8("strategy")?)?,
        },
        2 => Request::GetIrsValue {
            collection: d.string("collection")?,
            query: d.string("query")?,
            oid: Oid(d.u64("oid")?),
        },
        3 => {
            let oid = Oid(d.u64("oid")?);
            let text = d.string("text")?;
            let n = d.count(4, "collection list")?;
            let mut collections = Vec::with_capacity(n);
            for _ in 0..n {
                collections.push(d.string("collection name")?);
            }
            Request::UpdateText {
                oid,
                text,
                collections,
            }
        }
        4 => Request::IndexObjects {
            collection: d.string("collection")?,
            spec_query: d.string("spec query")?,
        },
        5 => Request::Ping,
        6 => Request::TermStats {
            collection: d.string("collection")?,
            query: d.string("query")?,
        },
        7 => Request::IrsQueryGlobal {
            collection: d.string("collection")?,
            query: d.string("query")?,
            k: d.u64("k")?,
            globals: decode_globals(&mut d)?,
        },
        8 => Request::EnqueueTask {
            kind: decode_task_kind(&mut d)?,
        },
        9 => Request::TaskStatus {
            id: d.u64("task id")?,
        },
        10 => Request::ListTasks {
            filter: decode_task_filter(&mut d)?,
        },
        other => return Err(WireError::Malformed(format!("unknown request tag {other}"))),
    };
    d.finish()?;
    Ok(req)
}

/// Encode a response as a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match resp {
        Response::IrsResult { hits, origin } => {
            buf.push(0);
            buf.push(origin_byte(*origin));
            put_u32(&mut buf, hits.len() as u32);
            for (oid, value) in hits {
                put_u64(&mut buf, oid.0);
                put_f64(&mut buf, *value);
            }
        }
        Response::Mixed {
            oids,
            strategy,
            origin,
        } => {
            buf.push(1);
            buf.push(strategy_byte(*strategy));
            buf.push(origin_byte(*origin));
            put_u32(&mut buf, oids.len() as u32);
            for oid in oids {
                put_u64(&mut buf, oid.0);
            }
        }
        Response::Value(v) => {
            buf.push(2);
            put_f64(&mut buf, *v);
        }
        Response::Updated { collections } => {
            buf.push(3);
            put_u64(&mut buf, *collections as u64);
        }
        Response::Indexed { objects } => {
            buf.push(4);
            put_u64(&mut buf, *objects as u64);
        }
        Response::Pong => {
            buf.push(5);
        }
        Response::TermStats(globals) => {
            buf.push(6);
            put_globals(&mut buf, globals);
        }
        Response::IrsKeyed { hits } => {
            buf.push(7);
            put_u32(&mut buf, hits.len() as u32);
            for (key, value) in hits {
                put_str(&mut buf, key);
                put_f64(&mut buf, *value);
            }
        }
        Response::TaskAccepted(id) => {
            buf.push(8);
            put_u64(&mut buf, *id);
        }
        Response::TaskInfo(task) => {
            buf.push(9);
            put_task(&mut buf, task);
        }
        Response::TaskList(tasks) => {
            buf.push(10);
            put_u32(&mut buf, tasks.len() as u32);
            for task in tasks {
                put_task(&mut buf, task);
            }
        }
    }
    buf
}

/// Decode a response frame payload (strict, like [`decode_request`]).
pub fn decode_response(payload: &[u8]) -> WireResult<Response> {
    let mut d = Dec::new(payload);
    let resp = match d.u8("response tag")? {
        0 => {
            let origin = origin_from(d.u8("origin")?)?;
            let n = d.count(16, "hit list")?;
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                let oid = Oid(d.u64("hit oid")?);
                let value = d.f64("hit value")?;
                hits.push((oid, value));
            }
            Response::IrsResult { hits, origin }
        }
        1 => {
            let strategy = strategy_from(d.u8("strategy")?)?;
            let origin = origin_from(d.u8("origin")?)?;
            let n = d.count(8, "oid list")?;
            let mut oids = Vec::with_capacity(n);
            for _ in 0..n {
                oids.push(Oid(d.u64("oid")?));
            }
            Response::Mixed {
                oids,
                strategy,
                origin,
            }
        }
        2 => Response::Value(d.f64("value")?),
        3 => Response::Updated {
            collections: d.u64("collection count")? as usize,
        },
        4 => Response::Indexed {
            objects: d.u64("object count")? as usize,
        },
        5 => Response::Pong,
        6 => Response::TermStats(decode_globals(&mut d)?),
        7 => {
            // Each keyed hit needs at least a key length prefix + score.
            let n = d.count(12, "keyed hit list")?;
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                let key = d.string("hit key")?;
                let value = d.f64("hit value")?;
                hits.push((key, value));
            }
            Response::IrsKeyed { hits }
        }
        8 => Response::TaskAccepted(d.u64("task id")?),
        9 => Response::TaskInfo(decode_task(&mut d)?),
        10 => {
            // Each task needs at least id + status + tick + batch flag
            // + a minimal kind (tag + one length prefix).
            let n = d.count(23, "task list")?;
            let mut tasks = Vec::with_capacity(n);
            for _ in 0..n {
                tasks.push(decode_task(&mut d)?);
            }
            Response::TaskList(tasks)
        }
        other => {
            return Err(WireError::Malformed(format!(
                "unknown response tag {other}"
            )))
        }
    };
    d.finish()?;
    Ok(resp)
}

/// Encode a fault as an error-frame payload.
pub fn encode_fault(fault: &WireFault) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + fault.message.len());
    buf.extend_from_slice(&fault.status.code().to_le_bytes());
    put_str(&mut buf, &fault.message);
    buf
}

/// Decode an error-frame payload.
pub fn decode_fault(payload: &[u8]) -> WireResult<WireFault> {
    let mut d = Dec::new(payload);
    let code = d.u16("status code")?;
    let status = Status::from_code(code)
        .ok_or_else(|| WireError::Malformed(format!("unknown status code {code}")))?;
    let message = d.string("error message")?;
    d.finish()?;
    Ok(WireFault { status, message })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn roundtrip_frame(kind: FrameKind, payload: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, payload).unwrap();
        read_frame(&mut buf.as_slice()).unwrap().expect("one frame")
    }

    #[test]
    fn frame_roundtrip_and_clean_close() {
        let f = roundtrip_frame(FrameKind::Request, b"hello");
        assert_eq!(f.kind, FrameKind::Request);
        assert_eq!(f.payload, b"hello");
        // EOF at a frame boundary is a clean close.
        assert!(read_frame(&mut (&[] as &[u8])).unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_and_kind_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        let mut v = buf.clone();
        v[4] = 99;
        assert!(matches!(
            read_frame(&mut v.as_slice()),
            Err(WireError::BadVersion(99))
        ));
        let mut k = buf.clone();
        k[5] = 7;
        assert!(matches!(
            read_frame(&mut k.as_slice()),
            Err(WireError::BadKind(7))
        ));
    }

    #[test]
    fn oversize_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::Oversize(n)) if n == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn oversize_error_reports_exact_length_past_4gib() {
        // Regression: the length used to be narrowed `as u32`, so a
        // payload of 4 GiB + 5 bytes reported "frame length 5" — a tiny,
        // legal-looking number. The check must carry the exact length.
        let huge = (u32::MAX as usize) + 6;
        match check_payload_len(huge) {
            Err(WireError::Oversize(n)) => assert_eq!(n, huge as u64),
            other => panic!("expected Oversize, got {other:?}"),
        }
        // Display carries the untruncated number too.
        let msg = WireError::Oversize(huge as u64).to_string();
        assert!(msg.contains(&huge.to_string()), "{msg}");
        assert!(check_payload_len(MAX_FRAME_LEN as usize).is_ok());
        assert!(check_payload_len(MAX_FRAME_LEN as usize + 1).is_err());
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Response, b"payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncation_is_unexpected_eof_not_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"0123456789").unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3] {
            let err = read_frame(&mut &buf[..cut]).expect_err("truncated");
            match err {
                WireError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
                other => panic!("expected Io(UnexpectedEof), got {other:?}"),
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn request_codec_roundtrips_every_variant() {
        let requests = vec![
            Request::IrsQuery {
                collection: "collPara".into(),
                query: "#and(telnet www)".into(),
            },
            Request::MixedQuery {
                collection: "c".into(),
                class: "PARA".into(),
                irs_query: "nii".into(),
                threshold: 0.45,
                strategy: MixedStrategy::IrsFirst,
            },
            Request::GetIrsValue {
                collection: "c".into(),
                query: "q".into(),
                oid: Oid(17),
            },
            Request::UpdateText {
                oid: Oid(3),
                text: "ünïcodé text".into(),
                collections: vec!["a".into(), "b".into()],
            },
            Request::IndexObjects {
                collection: "c".into(),
                spec_query: "ACCESS p FROM p IN PARA".into(),
            },
            Request::Ping,
            Request::TermStats {
                collection: "c".into(),
                query: "#or(www nii)".into(),
            },
            Request::IrsQueryGlobal {
                collection: "c".into(),
                query: "#or(www nii)".into(),
                k: u64::MAX,
                globals: sample_globals(),
            },
            Request::EnqueueTask {
                kind: TaskKind::UpdateText {
                    oid: Oid(12),
                    text: "wälzlager".into(),
                    collections: vec!["a".into(), "b".into()],
                },
            },
            Request::EnqueueTask {
                kind: TaskKind::IndexObjects {
                    collection: "c".into(),
                    spec_query: "ACCESS p FROM p IN PARA".into(),
                },
            },
            Request::EnqueueTask {
                kind: TaskKind::Flush {
                    collection: "c".into(),
                },
            },
            Request::TaskStatus { id: u64::MAX },
            Request::ListTasks {
                filter: TaskFilter::default(),
            },
            Request::ListTasks {
                filter: TaskFilter {
                    status: Some(TaskStatusKind::Failed),
                    collection: Some("collPara".into()),
                },
            },
        ];
        for req in requests {
            let decoded = decode_request(&encode_request(&req)).unwrap();
            assert_eq!(decoded, req);
        }
    }

    fn sample_globals() -> QueryGlobals {
        QueryGlobals {
            n_docs: 1234,
            total_tokens: 98_765,
            min_doc_len: 3,
            max_doc_len: 412,
            terms: vec![
                TermGlobals {
                    term: "www".into(),
                    df: 17,
                    max_tf: 5,
                },
                TermGlobals {
                    term: "nii".into(),
                    df: 2,
                    max_tf: 1,
                },
            ],
        }
    }

    #[test]
    fn response_codec_roundtrips_every_variant() {
        let responses = vec![
            Response::IrsResult {
                hits: vec![(Oid(1), 0.9), (Oid(2), 0.1)],
                origin: ResultOrigin::Stale,
            },
            Response::Mixed {
                oids: vec![Oid(5), Oid(9)],
                strategy: MixedStrategy::Independent,
                origin: ResultOrigin::Buffered,
            },
            Response::Value(0.725),
            Response::Updated { collections: 2 },
            Response::Indexed { objects: 40 },
            Response::Pong,
            Response::TermStats(sample_globals()),
            Response::IrsKeyed {
                hits: vec![("oid:9".into(), 0.75), ("oid:10".into(), 0.75)],
            },
            Response::TaskAccepted(41),
            Response::TaskInfo(Task {
                id: 41,
                kind: TaskKind::Flush {
                    collection: "c".into(),
                },
                status: TaskStatus::Failed {
                    error: "irs unreachable".into(),
                },
                enqueued_at: 9,
                batch_id: Some(3),
            }),
            Response::TaskList(vec![
                Task {
                    id: 1,
                    kind: TaskKind::IndexObjects {
                        collection: "c".into(),
                        spec_query: "ACCESS p FROM p IN PARA".into(),
                    },
                    status: TaskStatus::Succeeded,
                    enqueued_at: 0,
                    batch_id: Some(1),
                },
                Task {
                    id: 2,
                    kind: TaskKind::UpdateText {
                        oid: Oid(3),
                        text: String::new(),
                        collections: vec![],
                    },
                    status: TaskStatus::Enqueued,
                    enqueued_at: 1,
                    batch_id: None,
                },
            ]),
        ];
        for resp in responses {
            let decoded = decode_response(&encode_response(&resp)).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn hostile_term_stats_counts_rejected() {
        // A term-stats list claiming more entries than bytes remain.
        let mut buf = vec![6u8];
        put_u32(&mut buf, 1);
        put_u64(&mut buf, 10);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            decode_response(&buf),
            Err(WireError::Malformed(_))
        ));
        // Same for a keyed hit list.
        let mut keyed = vec![7u8];
        put_u32(&mut keyed, u32::MAX);
        assert!(matches!(
            decode_response(&keyed),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        // Unknown tag.
        assert!(matches!(
            decode_request(&[200]),
            Err(WireError::Malformed(_))
        ));
        // Empty payload.
        assert!(matches!(decode_request(&[]), Err(WireError::Malformed(_))));
        // Truncated string.
        let mut buf = vec![0u8];
        put_u32(&mut buf, 100);
        assert!(matches!(decode_request(&buf), Err(WireError::Malformed(_))));
        // Trailing garbage.
        let mut ok = encode_request(&Request::IrsQuery {
            collection: "c".into(),
            query: "q".into(),
        });
        ok.push(0);
        assert!(matches!(decode_request(&ok), Err(WireError::Malformed(_))));
        // A ping carries no fields; a suffixed byte is trailing garbage.
        let mut ping = encode_request(&Request::Ping);
        assert_eq!(ping, vec![5]);
        ping.push(1);
        assert!(matches!(
            decode_request(&ping),
            Err(WireError::Malformed(_))
        ));
        let mut pong = encode_response(&Response::Pong);
        pong.push(1);
        assert!(matches!(
            decode_response(&pong),
            Err(WireError::Malformed(_))
        ));
        // Hostile element count (claims more hits than bytes).
        let mut resp = vec![0u8, 0u8];
        put_u32(&mut resp, u32::MAX);
        assert!(matches!(
            decode_response(&resp),
            Err(WireError::Malformed(_))
        ));
        // Bad discriminants.
        assert!(matches!(
            decode_response(&[0, 9, 0, 0, 0, 0]),
            Err(WireError::Malformed(_))
        ));
        // Invalid UTF-8 in a string.
        let mut bad = vec![0u8];
        put_u32(&mut bad, 2);
        bad.extend_from_slice(&[0xff, 0xfe]);
        put_u32(&mut bad, 0);
        assert!(matches!(decode_request(&bad), Err(WireError::Malformed(_))));
    }

    #[test]
    fn status_mapping_matches_error_taxonomy() {
        assert_eq!(
            Status::for_error(&CouplingError::Overloaded(64)),
            Status::Overloaded
        );
        assert_eq!(
            Status::for_error(&CouplingError::ShuttingDown),
            Status::ShuttingDown
        );
        assert_eq!(
            Status::for_error(&CouplingError::Timeout(Duration::from_millis(1))),
            Status::Timeout
        );
        assert_eq!(
            Status::for_error(&CouplingError::UnknownCollection("c".into())),
            Status::NotFound
        );
        assert_eq!(
            Status::for_error(&irs::IrsError::Unavailable("down".into()).into()),
            Status::IrsDown
        );
        assert_eq!(
            Status::for_error(&CouplingError::BadSpecQuery("no".into())),
            Status::BadRequest
        );
        assert_eq!(
            Status::for_error(&std::io::Error::other("disk").into()),
            Status::Internal
        );
        // Codes survive the wire and reverse to the right ErrorKind.
        for status in [
            Status::BadRequest,
            Status::NotFound,
            Status::Overloaded,
            Status::Internal,
            Status::IrsDown,
            Status::ShuttingDown,
            Status::Timeout,
        ] {
            assert_eq!(Status::from_code(status.code()), Some(status));
        }
        assert_eq!(Status::Overloaded.kind(), ErrorKind::Overloaded);
        assert_eq!(Status::ShuttingDown.kind(), ErrorKind::Overloaded);
        assert_eq!(Status::Timeout.kind(), ErrorKind::Timeout);
    }

    #[test]
    fn fault_roundtrip() {
        let fault = WireFault {
            status: Status::Overloaded,
            message: "overloaded: request queue at capacity 64".into(),
        };
        let decoded = decode_fault(&encode_fault(&fault)).unwrap();
        assert_eq!(decoded, fault);
        assert!(fault.to_string().starts_with("429"));
        // Unknown codes are malformed, not a panic.
        let mut bad = encode_fault(&fault);
        bad[0] = 0xff;
        bad[1] = 0xff;
        assert!(matches!(decode_fault(&bad), Err(WireError::Malformed(_))));
    }
}
