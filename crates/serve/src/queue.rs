//! Bounded MPMC queue with admission control.
//!
//! The serving layer's backpressure primitive: producers never block —
//! a full queue rejects immediately ([`PushError::Full`]) so overload
//! surfaces to clients as a fast failure instead of unbounded latency.
//! Consumers block until work arrives or the queue is closed.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot`
//! shim has no condition variables). Lock poisoning is *recovered*, not
//! propagated: a worker that panics while holding the queue lock must
//! not cascade panics into every unrelated client thread blocked on the
//! same queue — the queue's invariants hold at every await point, so
//! the data behind a poisoned lock is still valid.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A refused push. The rejected item rides along so the caller can
/// fail it with the precise reason instead of losing it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the item must be rejected (or retried
    /// later).
    Full(T),
    /// The queue is closed (server shutting down).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Create a queue admitting at most `capacity` queued items.
    /// A capacity of zero is rounded up to one.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueue `item` or hand it back with the
    /// refusal reason.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking removal. Returns `None` once the queue is closed *and*
    /// drained — consumers use that as their exit signal, so close is
    /// graceful: queued work still completes.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Refuse new work; wake all consumers so they can drain and exit.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn rejects_when_full_then_admits_after_pop() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(matches!(q.push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert!(matches!(q.push(8), Err(PushError::Closed(8))));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.push(42).unwrap();
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(42)]);
    }

    #[test]
    fn poisoned_lock_is_recovered_not_cascaded() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(1).unwrap();
        // Panic while holding the queue lock, poisoning it.
        let q2 = Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _guard = q2.inner.lock().unwrap();
            panic!("poison the queue lock");
        })
        .join();
        // Every operation still works: the queue's data was valid when
        // the panicking holder died, so recovery is safe.
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 1);
        q.close();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_capacity_rounds_up() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(1).unwrap();
        assert!(matches!(q.push(2), Err(PushError::Full(2))));
    }
}
