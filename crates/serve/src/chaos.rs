//! Deterministic network chaos: a seeded in-process TCP proxy.
//!
//! [`irs::fault::FaultPlan`] injects failures *inside* the IRS; once the
//! IRS sits behind the wire ([`crate::replica`]), the network itself
//! becomes a failure domain — connections stall, reset, and truncate
//! independently of both endpoints. [`ChaosProxy`] simulates exactly
//! that: it listens on a loopback port, forwards every connection to an
//! upstream address, and misbehaves per a seeded [`ChaosPlan`]:
//!
//! * **Black hole** — accept the connection, never forward a byte, never
//!   answer. The client's only defences are its own timeouts and hedging.
//! * **Delay** — forward, but only after a fixed stall.
//! * **Reset** — close the client connection immediately, before any
//!   byte flows (an abrupt refusal).
//! * **Truncate** — forward the upstream's response but cut the
//!   connection after N bytes, tearing frames mid-payload.
//!
//! Determinism mirrors [`FaultPlan`]: each accepted connection ticks a
//! counter, and the fault applied to connection *n* is a pure function
//! of `(seed, n)` (splitmix64) plus the runtime [`ChaosPlan::force`]
//! override. Tests that open connections in a fixed order therefore see
//! a reproducible fault sequence for a fixed seed.
//!
//! [`FaultPlan`]: irs::fault::FaultPlan

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What the proxy does to one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Forward faithfully in both directions.
    Pass,
    /// Accept but never forward or answer; the connection stays open
    /// (and silent) until the proxy shuts down or the client gives up.
    Blackhole,
    /// Forward, but only after stalling this long first.
    Delay(Duration),
    /// Close the client connection immediately.
    Reset,
    /// Forward at most this many upstream→client bytes, then cut both
    /// directions (typically mid-frame).
    Truncate(usize),
}

/// splitmix64 — the same mixing function [`irs::fault`] uses, so chaos
/// decisions are deterministic pure functions of `(seed, connection)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-category salts so each fault category rolls an independent
/// deterministic dice per connection.
const SALT_RESET: u64 = 0x5265_7365;
const SALT_BLACKHOLE: u64 = 0x426c_6163;
const SALT_TRUNCATE: u64 = 0x5472_756e;
const SALT_DELAY: u64 = 0x4465_6c61;

fn threshold(rate: f64) -> u64 {
    let clamped = rate.clamp(0.0, 1.0);
    if clamped >= 1.0 {
        u64::MAX
    } else {
        (clamped * u64::MAX as f64) as u64
    }
}

/// A deterministic schedule of connection-level network faults.
///
/// Categories are checked in a fixed order per connection — reset,
/// black hole, truncate, delay — and the first whose seeded dice roll
/// fires decides the connection's fate. [`ChaosPlan::force`] overrides
/// everything at runtime (for scripted scenarios like "black-hole
/// replica A now").
#[derive(Debug)]
pub struct ChaosPlan {
    seed: u64,
    reset_threshold: AtomicU64,
    blackhole_threshold: AtomicU64,
    truncate_threshold: AtomicU64,
    truncate_at: AtomicU64,
    delay_threshold: AtomicU64,
    delay_us: AtomicU64,
    /// Runtime override: `Some(mode)` applies `mode` to every new
    /// connection regardless of the seeded schedule.
    forced: Mutex<Option<ChaosMode>>,
    conns: AtomicU64,
    injected: AtomicU64,
}

impl ChaosPlan {
    /// A plan that forwards everything faithfully.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            reset_threshold: AtomicU64::new(0),
            blackhole_threshold: AtomicU64::new(0),
            truncate_threshold: AtomicU64::new(0),
            truncate_at: AtomicU64::new(64),
            delay_threshold: AtomicU64::new(0),
            delay_us: AtomicU64::new(0),
            forced: Mutex::new(None),
            conns: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Reset each connection independently with probability `rate`.
    pub fn with_reset_rate(self, rate: f64) -> Self {
        self.reset_threshold
            .store(threshold(rate), Ordering::Relaxed);
        self
    }

    /// Black-hole each connection independently with probability `rate`.
    pub fn with_blackhole_rate(self, rate: f64) -> Self {
        self.blackhole_threshold
            .store(threshold(rate), Ordering::Relaxed);
        self
    }

    /// Truncate each connection's response stream after `at` bytes,
    /// independently with probability `rate`.
    pub fn with_truncate(self, rate: f64, at: usize) -> Self {
        self.truncate_threshold
            .store(threshold(rate), Ordering::Relaxed);
        self.truncate_at.store(at as u64, Ordering::Relaxed);
        self
    }

    /// Delay each connection by `delay` independently with probability
    /// `rate`.
    pub fn with_delay(self, rate: f64, delay: Duration) -> Self {
        self.delay_threshold
            .store(threshold(rate), Ordering::Relaxed);
        self.delay_us
            .store(delay.as_micros() as u64, Ordering::Relaxed);
        self
    }

    /// Override the schedule: apply `mode` to every new connection
    /// (`None` returns control to the seeded dice). Takes effect for
    /// connections accepted after the call.
    pub fn force(&self, mode: Option<ChaosMode>) {
        *self.forced.lock().unwrap_or_else(|e| e.into_inner()) = mode;
    }

    /// Connections the plan has decided so far.
    pub fn conns_seen(&self) -> u64 {
        self.conns.load(Ordering::Relaxed)
    }

    /// Connections that received a fault (anything but [`ChaosMode::Pass`]).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The mode for connection `conn` — pure in `(seed, conn)` given
    /// fixed rates and no override, so callers (and tests) can predict
    /// the schedule without opening sockets.
    pub fn mode_for(&self, conn: u64) -> ChaosMode {
        if let Some(mode) = *self.forced.lock().unwrap_or_else(|e| e.into_inner()) {
            return mode;
        }
        let roll = |salt: u64| splitmix64(self.seed ^ conn.wrapping_mul(0x9e37_79b9) ^ salt);
        if roll(SALT_RESET) < self.reset_threshold.load(Ordering::Relaxed) {
            return ChaosMode::Reset;
        }
        if roll(SALT_BLACKHOLE) < self.blackhole_threshold.load(Ordering::Relaxed) {
            return ChaosMode::Blackhole;
        }
        if roll(SALT_TRUNCATE) < self.truncate_threshold.load(Ordering::Relaxed) {
            return ChaosMode::Truncate(self.truncate_at.load(Ordering::Relaxed) as usize);
        }
        if roll(SALT_DELAY) < self.delay_threshold.load(Ordering::Relaxed) {
            return ChaosMode::Delay(Duration::from_micros(self.delay_us.load(Ordering::Relaxed)));
        }
        ChaosMode::Pass
    }

    /// Decide (and account) the next accepted connection's fate.
    fn next_mode(&self) -> ChaosMode {
        let conn = self.conns.fetch_add(1, Ordering::Relaxed);
        let mode = self.mode_for(conn);
        if mode != ChaosMode::Pass {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        mode
    }
}

/// How often forwarding loops and black holes poll the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// A loopback TCP proxy that subjects every connection to a
/// [`ChaosPlan`] on its way to `upstream`.
pub struct ChaosProxy {
    plan: Arc<ChaosPlan>,
    local_addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Listen on an ephemeral loopback port and forward to `upstream`
    /// under `plan`.
    pub fn start(upstream: SocketAddr, plan: ChaosPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let plan = Arc::new(plan);
        let shutting_down = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let plan = Arc::clone(&plan);
            let shutting_down = Arc::clone(&shutting_down);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || {
                accept_loop(listener, upstream, plan, shutting_down, conn_threads)
            })
        };
        Ok(ChaosProxy {
            plan,
            local_addr,
            shutting_down,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The proxy's listening address — what clients dial instead of the
    /// upstream.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The plan, for runtime overrides ([`ChaosPlan::force`]) and
    /// counters.
    pub fn plan(&self) -> &Arc<ChaosPlan> {
        &self.plan
    }

    /// Stop accepting, cut every proxied connection, join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let threads: Vec<JoinHandle<()>> = self
            .conn_threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

impl fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("local_addr", &self.local_addr)
            .field("conns_seen", &self.plan.conns_seen())
            .field("injected", &self.plan.injected())
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: Arc<ChaosPlan>,
    shutting_down: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let (client, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) if shutting_down.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let mode = plan.next_mode();
        let flag = Arc::clone(&shutting_down);
        let handle = std::thread::spawn(move || handle_proxied(client, upstream, mode, flag));
        conn_threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

fn handle_proxied(client: TcpStream, upstream: SocketAddr, mode: ChaosMode, flag: Arc<AtomicBool>) {
    let mut limit: Option<usize> = None;
    match mode {
        ChaosMode::Reset => return, // drop = close before any byte flows
        ChaosMode::Blackhole => {
            // Hold the socket open and silent. Don't read: the client's
            // request bytes sit in kernel buffers and nothing ever
            // answers — indistinguishable from a hung peer.
            while !flag.load(Ordering::SeqCst) {
                std::thread::sleep(POLL);
            }
            return;
        }
        ChaosMode::Delay(d) => {
            // Stall before even connecting upstream; a patient client
            // then gets a faithful (just late) exchange.
            let mut waited = Duration::ZERO;
            while waited < d && !flag.load(Ordering::SeqCst) {
                let step = POLL.min(d - waited);
                std::thread::sleep(step);
                waited += step;
            }
            if flag.load(Ordering::SeqCst) {
                return;
            }
        }
        ChaosMode::Truncate(n) => limit = Some(n),
        ChaosMode::Pass => {}
    }
    let Ok(server) = TcpStream::connect(upstream) else {
        return; // upstream gone: the client sees a closed connection
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    // Two pumps, one per direction; the upstream→client pump enforces
    // the truncation budget. When either direction ends, both sockets
    // are shut down so the other pump unblocks too.
    let up_flag = Arc::clone(&flag);
    let up = std::thread::spawn(move || {
        pump(client_r, server, None, &up_flag);
    });
    pump(server_r, client, limit, &flag);
    let _ = up.join();
}

/// Copy `from` into `to` until EOF, error, shutdown, or (when `limit`
/// is set) the byte budget runs out — then sever both sockets.
fn pump(mut from: TcpStream, mut to: TcpStream, limit: Option<usize>, flag: &AtomicBool) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut remaining = limit;
    let mut buf = [0u8; 16 * 1024];
    loop {
        if flag.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let allowed = match &mut remaining {
                    Some(left) => {
                        let take = n.min(*left);
                        *left -= take;
                        take
                    }
                    None => n,
                };
                if allowed > 0 && to.write_all(&buf[..allowed]).is_err() {
                    break;
                }
                if matches!(remaining, Some(0)) {
                    break; // truncation budget spent: cut mid-stream
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = ChaosPlan::new(42)
            .with_blackhole_rate(0.3)
            .with_reset_rate(0.1);
        let b = ChaosPlan::new(42)
            .with_blackhole_rate(0.3)
            .with_reset_rate(0.1);
        let seq_a: Vec<ChaosMode> = (0..64).map(|i| a.mode_for(i)).collect();
        let seq_b: Vec<ChaosMode> = (0..64).map(|i| b.mode_for(i)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same schedule");
        let c = ChaosPlan::new(43)
            .with_blackhole_rate(0.3)
            .with_reset_rate(0.1);
        let seq_c: Vec<ChaosMode> = (0..64).map(|i| c.mode_for(i)).collect();
        assert_ne!(seq_a, seq_c, "different seed, different schedule");
        // The configured rates roughly show up in the schedule.
        let holes = seq_a
            .iter()
            .filter(|m| matches!(m, ChaosMode::Blackhole))
            .count();
        assert!(holes > 5 && holes < 40, "≈30% of 64, got {holes}");
    }

    #[test]
    fn force_overrides_and_releases() {
        let plan = ChaosPlan::new(7);
        assert_eq!(plan.mode_for(0), ChaosMode::Pass);
        plan.force(Some(ChaosMode::Blackhole));
        assert_eq!(plan.mode_for(0), ChaosMode::Blackhole);
        plan.force(None);
        assert_eq!(plan.mode_for(0), ChaosMode::Pass);
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let always = ChaosPlan::new(1).with_reset_rate(1.0);
        let never = ChaosPlan::new(1);
        for i in 0..32 {
            assert_eq!(always.mode_for(i), ChaosMode::Reset);
            assert_eq!(never.mode_for(i), ChaosMode::Pass);
        }
    }

    #[test]
    fn proxy_passes_bytes_through_faithfully() {
        // A tiny echo upstream.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(&buf).unwrap();
        });
        let proxy = ChaosProxy::start(upstream_addr, ChaosPlan::new(9)).unwrap();
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
        assert_eq!(proxy.plan().conns_seen(), 1);
        assert_eq!(proxy.plan().injected(), 0);
        echo.join().unwrap();
        proxy.shutdown();
    }

    #[test]
    fn truncation_cuts_the_response_stream() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let srv = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().unwrap();
            let _ = conn.write_all(&[0xAB; 100]);
            // Keep the socket open briefly so the cut is the proxy's.
            std::thread::sleep(Duration::from_millis(100));
        });
        let plan = ChaosPlan::new(3);
        plan.force(Some(ChaosMode::Truncate(10)));
        let proxy = ChaosProxy::start(upstream_addr, plan).unwrap();
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut got = Vec::new();
        let n = conn.read_to_end(&mut got).unwrap_or(got.len());
        assert!(n <= 10, "proxy forwarded {n} bytes past the 10-byte cut");
        srv.join().unwrap();
        proxy.shutdown();
    }
}
