//! Helpers shared by the cross-crate integration tests.

use coupling::{CollectionSetup, DocumentSystem};

/// A small two-issue journal with a paragraph collection, used by several
/// integration tests.
pub fn two_issue_system() -> DocumentSystem {
    let mut sys = DocumentSystem::new();
    sys.load_sgml(
        "<MMFDOC YEAR=\"1994\"><DOCTITLE>Telnet</DOCTITLE>\
         <PARA>telnet is a protocol for remote terminal sessions</PARA>\
         <PARA>telnet enables interactive login across networks</PARA></MMFDOC>",
    )
    .expect("issue one loads");
    sys.load_sgml(
        "<MMFDOC YEAR=\"1995\"><DOCTITLE>Information highways</DOCTITLE>\
         <PARA>the www connects hypertext documents worldwide</PARA>\
         <PARA>the nii will bring the www into every home</PARA></MMFDOC>",
    )
    .expect("issue two loads");
    sys.create_collection("collPara", CollectionSetup::default())
        .expect("collection created");
    sys.index_collection("collPara", "ACCESS p FROM p IN PARA")
        .expect("indexing succeeds");
    sys
}
