//! End-to-end integration: SGML text → DTD validation → OODBMS objects →
//! IRS indexing → mixed queries — the complete pipeline of the paper's
//! Figure 2.

use coupling::{CollectionSetup, DocumentSystem, TextMode};
use oodb::Value;
use sgml::mmf::{mmf_dtd, telnet_example};
use system_tests::two_issue_system;

#[test]
fn sgml_to_mixed_query_pipeline() {
    let sys = two_issue_system();

    // Structural query only.
    let rows = sys
        .query("ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994'")
        .unwrap();
    assert_eq!(rows.len(), 1);

    // Content query only (through the coupling collection).
    let telnet_paras = sys
        .collection("collPara")
        .unwrap()
        .get_irs_result("telnet")
        .unwrap()
        .len();
    assert_eq!(telnet_paras, 2);

    // Mixed query combining both, in the OODBMS query language.
    let rows = sys
        .query(
            "ACCESS p FROM p IN PARA, d IN MMFDOC WHERE \
             p -> getContaining('MMFDOC') == d AND \
             d -> getAttributeValue('YEAR') = '1994' AND \
             p -> getIRSValue(collPara, 'telnet') > 0.45",
        )
        .unwrap();
    assert_eq!(
        rows.len(),
        2,
        "both telnet paragraphs are in the 1994 issue"
    );
}

#[test]
fn validated_pipeline_with_mmf_dtd() {
    let mut sys = DocumentSystem::new();
    let dtd = mmf_dtd();
    let loaded = sys.load_sgml_validated(telnet_example(), &dtd).unwrap();
    sys.create_collection("c", CollectionSetup::default())
        .unwrap();
    sys.index_collection("c", "ACCESS p FROM p IN PARA")
        .unwrap();
    // Document-level derivation works right after loading.
    let value = {
        let coll = sys.collection("c").unwrap();
        let ctx = coll.db().method_ctx();
        coll.get_irs_value(&ctx, "telnet", loaded.root).unwrap()
    };
    assert!(value > 0.4, "derived document value {value}");
}

#[test]
fn multiple_text_modes_give_different_collections() {
    let mut sys = two_issue_system();
    sys.create_collection(
        "titles",
        CollectionSetup::builder()
            .text_mode(TextMode::TitlesOnly)
            .build(),
    )
    .unwrap();
    sys.index_collection("titles", "ACCESS d FROM d IN MMFDOC")
        .unwrap();

    // 'telnet' appears in a DOCTITLE, so the titles collection finds the
    // document; 'protocol' appears only in paragraph text.
    let by_title = sys
        .collection("titles")
        .unwrap()
        .get_irs_result("telnet")
        .unwrap()
        .len();
    assert_eq!(by_title, 1);
    let by_title = sys
        .collection("titles")
        .unwrap()
        .get_irs_result("protocol")
        .unwrap()
        .len();
    assert_eq!(by_title, 0, "titles collection does not see body text");
}

#[test]
fn index_access_path_combines_with_irs_predicate() {
    let mut sys = two_issue_system();
    sys.db_mut()
        .create_index("MMFDOC", "YEAR", oodb::index::IndexKind::Hash)
        .unwrap();
    let (rows, plan) = sys
        .query_explain(
            "ACCESS d FROM d IN MMFDOC WHERE \
             d -> getAttributeValue('YEAR') = '1994' AND \
             d -> getIRSValue(collPara, 'telnet') > 0.45",
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert!(plan.contains("index eq"), "plan uses the index: {plan}");
    assert!(plan.contains("expensive"), "IRS predicate deferred: {plan}");
}

#[test]
fn updates_flow_through_to_queries() {
    let mut sys = two_issue_system();
    // Add a brand-new paragraph about gopher to the 1994 issue.
    let doc = sys
        .query("ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994'")
        .unwrap()[0]
        .oid()
        .unwrap();
    let para_class = sys.db().schema().class_id("PARA").unwrap();
    let mut txn = sys.db_mut().begin();
    let fresh = sys.db_mut().create_object(&mut txn, para_class).unwrap();
    sys.db_mut()
        .set_attr(
            &mut txn,
            fresh,
            "text",
            Value::from("gopher menus predate the web"),
        )
        .unwrap();
    sys.db_mut()
        .set_attr(&mut txn, fresh, "parent", Value::Oid(doc))
        .unwrap();
    sys.db_mut().commit(txn).unwrap();

    // Propagate eagerly via the collection's update method.
    {
        let mut coll = sys.collection_mut("collPara").unwrap();
        let ctx = coll.db().method_ctx();
        coll.on_insert(&ctx, fresh).unwrap();
    }

    let rows = sys
        .query("ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'gopher') > 0.4")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].oid().unwrap(), fresh);
}

#[test]
fn deleting_an_object_removes_it_from_results() {
    let mut sys = two_issue_system();
    let victim = sys
        .query("ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'nii') > 0.45")
        .unwrap()[0]
        .oid()
        .unwrap();
    let mut txn = sys.db_mut().begin();
    sys.db_mut().delete_object(&mut txn, victim).unwrap();
    sys.db_mut().commit(txn).unwrap();
    sys.collection_mut("collPara")
        .unwrap()
        .on_delete(victim)
        .unwrap();

    let rows = sys
        .query("ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'nii') > 0.45")
        .unwrap();
    assert!(rows.iter().all(|r| r.oid() != Some(victim)));
}
