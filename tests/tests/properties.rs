//! Cross-crate property-based tests: system-level invariants over random
//! corpora and operation sequences.

use coupling::{CollectionSetup, DerivationScheme, DocumentSystem};
use proptest::prelude::*;
use sgml::{CorpusConfig, CorpusGenerator};

/// Build a system from a generated corpus with the given seed.
fn seeded_system(seed: u64, docs: usize) -> (DocumentSystem, Vec<oodb::Oid>) {
    let mut generator = CorpusGenerator::new(CorpusConfig {
        docs,
        topics: 5,
        vocabulary: 300,
        seed,
        ..CorpusConfig::default()
    });
    let mut sys = DocumentSystem::new();
    let mut roots = Vec::new();
    for doc in generator.generate_corpus() {
        roots.push(sys.load_generated(&doc).expect("loads").root);
    }
    sys.create_collection("c", CollectionSetup::default())
        .expect("fresh");
    sys.index_collection("c", "ACCESS p FROM p IN PARA")
        .expect("indexes");
    (sys, roots)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Derived document values are beliefs: bounded to [0, 1] for every
    /// scheme except Sum (clamped anyway) on every random corpus.
    #[test]
    fn derived_values_are_bounded(seed in 0u64..500, topic in 0usize..5) {
        let (sys, roots) = seeded_system(seed, 6);
        let query = sgml::gen::topic_term(topic);
        for scheme in [
            DerivationScheme::Max,
            DerivationScheme::Avg,
            DerivationScheme::Sum,
            DerivationScheme::LengthWeighted,
            DerivationScheme::SubqueryAware,
        ] {
            sys.with_collection_and_db("c", |db, coll| {
                coll.set_derivation(scheme.clone());
                let ctx = db.method_ctx();
                for &root in &roots {
                    let v = coll.get_irs_value(&ctx, &query, root).expect("derives");
                    prop_assert!((0.0..=1.0).contains(&v), "{scheme:?}: {v}");
                }
                Ok(())
            }).expect("collection exists")?;
        }
    }

    /// The buffer never changes results: buffered and unbuffered
    /// evaluation agree exactly.
    #[test]
    fn buffering_is_transparent(seed in 0u64..500, topic in 0usize..5) {
        let (sys, _) = seeded_system(seed, 5);
        let query = sgml::gen::topic_term(topic);
        sys.with_collection("c", |coll| {
            let direct = coll.evaluate_uncached(&query).expect("evaluates");
            let buffered = coll.get_irs_result(&query).expect("evaluates");
            let again = coll.get_irs_result(&query).expect("buffer hit");
            prop_assert_eq!(&direct, &buffered);
            prop_assert_eq!(&buffered, &again);
            Ok(())
        }).expect("collection exists")?;
    }

    /// Mixed-query strategies agree on arbitrary thresholds.
    #[test]
    fn mixed_strategies_agree(seed in 0u64..200, threshold in 0.40f64..0.7) {
        use coupling::mixed::{evaluate_mixed, MixedStrategy};
        let (sys, _) = seeded_system(seed, 5);
        let query = sgml::gen::topic_term(0);
        let structural = |_: &oodb::Database, oid: oodb::Oid| oid.0.is_multiple_of(2);
        sys.with_collection_and_db("c", |db, coll| {
            let a = evaluate_mixed(db, coll, "PARA", &structural, &query, threshold,
                MixedStrategy::Independent).expect("independent");
            let b = evaluate_mixed(db, coll, "PARA", &structural, &query, threshold,
                MixedStrategy::IrsFirst).expect("irs-first");
            prop_assert_eq!(a.oids, b.oids);
            Ok(())
        }).expect("collection exists")?;
    }

    /// Re-indexing the same specification query is idempotent for search.
    #[test]
    fn reindexing_is_idempotent(seed in 0u64..200) {
        let (mut sys, _) = seeded_system(seed, 4);
        let query = sgml::gen::topic_term(1);
        let before = sys.with_collection("c", |c| c.get_irs_result(&query).expect("evaluates"))
            .expect("collection exists");
        sys.index_collection("c", "ACCESS p FROM p IN PARA").expect("reindex");
        let after = sys.with_collection("c", |c| c.get_irs_result(&query).expect("evaluates"))
            .expect("collection exists");
        prop_assert_eq!(before.len(), after.len());
        for (oid, v) in &before {
            let w = after.get(oid).copied().unwrap_or(-1.0);
            prop_assert!((v - w).abs() < 1e-9, "{oid}: {v} vs {w}");
        }
    }
}
