//! Cross-crate property-based tests: system-level invariants over random
//! corpora and operation sequences.

use coupling::{CollectionSetup, DerivationScheme, DocumentSystem};
use proptest::prelude::*;
use sgml::{CorpusConfig, CorpusGenerator};

/// Build a system from a generated corpus with the given seed.
fn seeded_system(seed: u64, docs: usize) -> (DocumentSystem, Vec<oodb::Oid>) {
    let mut generator = CorpusGenerator::new(CorpusConfig {
        docs,
        topics: 5,
        vocabulary: 300,
        seed,
        ..CorpusConfig::default()
    });
    let mut sys = DocumentSystem::new();
    let mut roots = Vec::new();
    for doc in generator.generate_corpus() {
        roots.push(sys.load_generated(&doc).expect("loads").root);
    }
    sys.create_collection("c", CollectionSetup::default())
        .expect("fresh");
    sys.index_collection("c", "ACCESS p FROM p IN PARA")
        .expect("indexes");
    (sys, roots)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Derived document values are beliefs: bounded to [0, 1] for every
    /// scheme except Sum (clamped anyway) on every random corpus.
    #[test]
    fn derived_values_are_bounded(seed in 0u64..500, topic in 0usize..5) {
        let (sys, roots) = seeded_system(seed, 6);
        let query = sgml::gen::topic_term(topic);
        for scheme in [
            DerivationScheme::Max,
            DerivationScheme::Avg,
            DerivationScheme::Sum,
            DerivationScheme::LengthWeighted,
            DerivationScheme::SubqueryAware,
        ] {
            let mut coll = sys.collection_mut("c").expect("collection exists");
            coll.set_derivation(scheme.clone());
            let ctx = coll.db().method_ctx();
            for &root in &roots {
                let v = coll.get_irs_value(&ctx, &query, root).expect("derives");
                prop_assert!((0.0..=1.0).contains(&v), "{scheme:?}: {v}");
            }
        }
    }

    /// The buffer never changes results: buffered and unbuffered
    /// evaluation agree exactly.
    #[test]
    fn buffering_is_transparent(seed in 0u64..500, topic in 0usize..5) {
        let (sys, _) = seeded_system(seed, 5);
        let query = sgml::gen::topic_term(topic);
        let coll = sys.collection("c").expect("collection exists");
        let direct = coll.evaluate_uncached(&query).expect("evaluates");
        let buffered = coll.get_irs_result(&query).expect("evaluates");
        let again = coll.get_irs_result(&query).expect("buffer hit");
        prop_assert_eq!(&direct, &buffered);
        prop_assert_eq!(&buffered, &again);
    }

    /// Mixed-query strategies agree on arbitrary thresholds.
    #[test]
    fn mixed_strategies_agree(seed in 0u64..200, threshold in 0.40f64..0.7) {
        use coupling::mixed::{evaluate_mixed, MixedStrategy};
        let (sys, _) = seeded_system(seed, 5);
        let query = sgml::gen::topic_term(0);
        let structural = |_: &oodb::Database, oid: oodb::Oid| oid.0.is_multiple_of(2);
        let coll = sys.collection("c").expect("collection exists");
        let db = coll.db();
        let a = evaluate_mixed(db, &coll, "PARA", &structural, &query, threshold,
            MixedStrategy::Independent).expect("independent");
        let b = evaluate_mixed(db, &coll, "PARA", &structural, &query, threshold,
            MixedStrategy::IrsFirst).expect("irs-first");
        prop_assert_eq!(a.oids, b.oids);
    }

    /// Re-indexing the same specification query is idempotent for search.
    #[test]
    fn reindexing_is_idempotent(seed in 0u64..200) {
        let (mut sys, _) = seeded_system(seed, 4);
        let query = sgml::gen::topic_term(1);
        let before = sys.collection("c").expect("collection exists")
            .get_irs_result(&query).expect("evaluates");
        sys.index_collection("c", "ACCESS p FROM p IN PARA").expect("reindex");
        let after = sys.collection("c").expect("collection exists")
            .get_irs_result(&query).expect("evaluates");
        prop_assert_eq!(before.len(), after.len());
        for (oid, v) in &before {
            let w = after.get(oid).copied().unwrap_or(-1.0);
            prop_assert!((v - w).abs() < 1e-9, "{oid}: {v} vs {w}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Propagation equivalence: any Insert/Modify/Delete sequence applied
    /// eagerly yields the same final IRS index state as deferring it —
    /// even when the deferred log crosses a crash and is recovered from
    /// its durable journal before the flush.
    #[test]
    fn deferred_journal_replay_equals_eager(seed in 0u64..300, script in prop::collection::vec(0u8..6, 1..24)) {
        use coupling::{Collection, CollectionSetup, PendingOp, PropagationStrategy, Propagator};
        use oodb::{Database, Oid, Value};
        use sgml::{load_document, parse_document};

        let journal = std::env::temp_dir()
            .join("coupling-prop-journal")
            .join(format!("equiv-{seed}-{}.journal", script.len()));
        std::fs::create_dir_all(journal.parent().unwrap()).unwrap();
        let _ = std::fs::remove_file(&journal);

        let mut db = Database::in_memory();
        db.define_class("IRSObject", None).unwrap();
        let tree = parse_document(
            "<MMFDOC><PARA>telnet is a protocol</PARA><PARA>the www grows</PARA></MMFDOC>",
        ).unwrap();
        let mut txn = db.begin();
        load_document(&mut db, &mut txn, &tree, "IRSObject").unwrap();
        db.commit(txn).unwrap();

        let mut eager_coll = Collection::new("e", CollectionSetup::default());
        eager_coll.index_objects(&db, "ACCESS p FROM p IN PARA").unwrap();
        let mut deferred_coll = Collection::new("d", CollectionSetup::default());
        deferred_coll.index_objects(&db, "ACCESS p FROM p IN PARA").unwrap();

        let mut eager = Propagator::new(PropagationStrategy::Eager);
        let mut deferred = Propagator::with_journal(PropagationStrategy::Deferred, &journal)
            .expect("journal opens");
        prop_assert!(deferred.pending().is_empty());

        // Interpret the script over a growing pool of objects. Words come
        // from a tiny vocabulary so modifications genuinely change hits.
        let vocab = ["telnet", "www", "nii", "gopher", "hypertext", "modem"];
        let mut pool: Vec<Oid> = Vec::new();
        let para_class = db.schema().class_id("PARA").unwrap();
        for (i, &b) in script.iter().enumerate() {
            let word = vocab[(seed as usize + i) % vocab.len()];
            let op = match b {
                0 | 1 => {
                    let mut txn = db.begin();
                    let oid = db.create_object(&mut txn, para_class).unwrap();
                    db.set_attr(&mut txn, oid, "text",
                        Value::from(format!("fresh {word} paragraph {i}"))).unwrap();
                    db.commit(txn).unwrap();
                    pool.push(oid);
                    PendingOp::Insert(oid)
                }
                2 | 3 if !pool.is_empty() => {
                    let oid = pool[(seed as usize + i) % pool.len()];
                    let mut txn = db.begin();
                    db.set_attr(&mut txn, oid, "text",
                        Value::from(format!("changed {word} text {i}"))).unwrap();
                    db.commit(txn).unwrap();
                    PendingOp::Modify(oid)
                }
                4 | 5 if !pool.is_empty() => {
                    let oid = pool.remove((seed as usize + i) % pool.len());
                    PendingOp::Delete(oid)
                }
                _ => continue,
            };
            let ctx = db.method_ctx();
            eager.record(&ctx, &mut eager_coll, op).unwrap();
            deferred.record(&ctx, &mut deferred_coll, op).unwrap();
        }

        // Crash: drop the deferred propagator with its log still pending,
        // then recover from the journal and flush.
        drop(deferred);
        let mut recovered = Propagator::with_journal(PropagationStrategy::Deferred, &journal)
            .expect("journal reopens");
        let ctx = db.method_ctx();
        recovered.flush(&ctx, &mut deferred_coll).unwrap();

        // Same live documents...
        let keys = |c: &Collection| {
            let mut v: Vec<String> = c.irs().with_store(|s| {
                s.iter_live().map(|(_, e)| e.key.clone()).collect()
            });
            v.sort();
            v
        };
        prop_assert_eq!(keys(&eager_coll), keys(&deferred_coll));
        // ...and the same answers.
        for word in vocab {
            let a = eager_coll.evaluate_uncached(word).unwrap();
            let b = deferred_coll.evaluate_uncached(word).unwrap();
            prop_assert_eq!(a.len(), b.len(), "hit sets differ for {}", word);
            for (oid, va) in &a {
                let vb = b.get(oid).copied().unwrap_or(-1.0);
                prop_assert!((va - vb).abs() < 1e-9, "{}@{}: {} vs {}", word, oid, va, vb);
            }
        }
        let _ = std::fs::remove_file(&journal);
    }
}
