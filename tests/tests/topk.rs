//! Top-k engine equivalence properties: for every corpus, model,
//! operator tree, and k, the pruned `search_top_k` must return exactly
//! the first k hits of the exhaustive `search` — same keys, bitwise the
//! same scores — and the ranking must not depend on the shard count.

use irs::analysis::{Analyzer, AnalyzerConfig};
use irs::query::evaluate;
use irs::{
    evaluate_top_k_with_strategy, parse_query, CollectionConfig, DocId, InvertedIndex,
    IrsCollection, ModelKind, PruneStrategy,
};
use proptest::prelude::*;

/// A tiny vocabulary so random documents share terms and rankings have
/// real ties to break.
const VOCAB: [&str; 12] = [
    "telnet", "gopher", "www", "archie", "veronica", "wais", "ftp", "nii", "mosaic", "lynx",
    "usenet", "irc",
];

fn model_for(choice: u8) -> ModelKind {
    match choice % 4 {
        0 => ModelKind::Boolean,
        1 => ModelKind::Vector(Default::default()),
        2 => ModelKind::Bm25(Default::default()),
        _ => ModelKind::Inference(Default::default()),
    }
}

/// Build one collection over `docs` (lists of vocabulary indices).
fn build(docs: &[Vec<u8>], model: ModelKind, shards: usize) -> IrsCollection {
    let mut coll = IrsCollection::new(CollectionConfig {
        model,
        shards,
        ..CollectionConfig::default()
    });
    for (i, words) in docs.iter().enumerate() {
        let text: Vec<&str> = words
            .iter()
            .map(|&w| VOCAB[w as usize % VOCAB.len()])
            .collect();
        coll.add_document(&format!("doc{i:03}"), &text.join(" "))
            .unwrap();
    }
    coll
}

/// One of several operator shapes over vocabulary terms — both shapes the
/// pruned engine handles natively and shapes that force the exhaustive
/// fallback (`#not`, phrases), which must obey the same contract.
fn query_for(shape: u8, a: u8, b: u8, c: u8) -> String {
    let t = |i: u8| VOCAB[i as usize % VOCAB.len()];
    match shape % 7 {
        0 => t(a).to_string(),
        1 => format!("#or({} {})", t(a), t(b)),
        2 => format!("#sum({} {} {})", t(a), t(b), t(c)),
        3 => format!("#wsum(3 {} 1 {})", t(a), t(b)),
        4 => format!("#and({} {})", t(a), t(b)),
        5 => format!("#and({} #not({}))", t(a), t(b)),
        _ => format!("\"{} {}\"", t(a), t(b)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `search_top_k(q, k)` equals the first k hits of `search(q)` under
    /// the universal tie-break (score desc, key asc), with bitwise-equal
    /// scores — pruning may never change what the user sees.
    #[test]
    fn top_k_is_a_prefix_of_the_full_ranking(
        docs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..40), 2..24),
        model_choice in any::<u8>(),
        shape in any::<u8>(),
        (a, b, c) in (any::<u8>(), any::<u8>(), any::<u8>()),
        k in 0usize..20,
    ) {
        let coll = build(&docs, model_for(model_choice), 3);
        let query = query_for(shape, a, b, c);
        let full = coll.search(&query).unwrap();
        let top = coll.search_top_k(&query, k).unwrap();
        prop_assert_eq!(top.len(), k.min(full.len()));
        for (got, want) in top.iter().zip(full.iter()) {
            prop_assert_eq!(&got.key, &want.key);
            // Bitwise equality: the pruned engine recomputes the exact
            // score for every emitted document.
            prop_assert_eq!(got.score.to_bits(), want.score.to_bits(),
                "score mismatch for {} in {}", got.key, query);
        }
    }

    /// The ranking is shard-count invariant: global statistics make the
    /// scores independent of how terms are partitioned.
    #[test]
    fn top_k_does_not_depend_on_shard_count(
        docs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..40), 2..24),
        model_choice in any::<u8>(),
        shape in any::<u8>(),
        (a, b, c) in (any::<u8>(), any::<u8>(), any::<u8>()),
        k in 0usize..20,
    ) {
        let query = query_for(shape, a, b, c);
        let single = build(&docs, model_for(model_choice), 1);
        let sharded = build(&docs, model_for(model_choice), 5);
        let lhs = single.search_top_k(&query, k).unwrap();
        let rhs = sharded.search_top_k(&query, k).unwrap();
        prop_assert_eq!(lhs.len(), rhs.len());
        for (l, r) in lhs.iter().zip(rhs.iter()) {
            prop_assert_eq!(&l.key, &r.key);
            prop_assert_eq!(l.score.to_bits(), r.score.to_bits());
        }
    }
    /// Block-max pruning is bit-identical to the exhaustive evaluator for
    /// every retrieval model, prunable operator shape, block size, and k —
    /// including degenerate one-doc blocks (`bs = 1`, maximal skip
    /// metadata) and blocks larger than most postings lists (`bs = 128`,
    /// no intra-list skips at this corpus size). The collection-bound
    /// strategy (the pre-block engine) must agree too, with tombstones in
    /// the mix.
    #[test]
    fn block_max_is_bit_identical_to_exhaustive_across_block_sizes(
        docs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..40), 2..24),
        deletes in prop::collection::vec(any::<bool>(), 24),
        model_choice in any::<u8>(),
        shape in any::<u8>(),
        (a, b, c) in (any::<u8>(), any::<u8>(), any::<u8>()),
        k in 0usize..20,
    ) {
        // Shapes 0..5 of `query_for` are the prunable fragment; `#not`
        // and phrases make the engine decline (`None`), which the
        // collection-level prefix property above already covers.
        let query = query_for(shape % 5, a, b, c);
        let node = parse_query(&query).unwrap();
        let model_kind = model_for(model_choice);
        let model = model_kind.as_model();
        for &bs in &[1u32, 16, 128] {
            let mut ix =
                InvertedIndex::with_block_size(Analyzer::new(AnalyzerConfig::default()), bs);
            for (i, words) in docs.iter().enumerate() {
                let text: Vec<&str> = words
                    .iter()
                    .map(|&w| VOCAB[w as usize % VOCAB.len()])
                    .collect();
                ix.add_document(&format!("doc{i:03}"), &text.join(" ")).unwrap();
            }
            for (i, &del) in deletes.iter().enumerate() {
                if del && i < docs.len() && ix.store().live_count() > 1 {
                    ix.delete_document(&format!("doc{i:03}")).unwrap();
                }
            }
            let mut full: Vec<(DocId, f64)> = evaluate(&ix, model, &node).into_iter().collect();
            full.sort_by(|x, y| {
                y.1.total_cmp(&x.1)
                    .then_with(|| ix.store().entry(x.0).key.cmp(&ix.store().entry(y.0).key))
            });
            full.truncate(k);
            for strategy in [PruneStrategy::BlockMax, PruneStrategy::CollectionBound] {
                let pruned = evaluate_top_k_with_strategy(&ix, model, &node, k, strategy)
                    .expect("prunable tree");
                prop_assert_eq!(
                    pruned.len(), full.len(),
                    "length, query {} bs {} strategy {:?}", query, bs, strategy
                );
                for ((gd, gs), (wd, ws)) in pruned.iter().zip(full.iter()) {
                    prop_assert_eq!(gd, wd, "doc, query {} bs {} {:?}", query, bs, strategy);
                    prop_assert_eq!(
                        gs.to_bits(), ws.to_bits(),
                        "score, query {} bs {} {:?}", query, bs, strategy
                    );
                }
            }
        }
    }
}

/// Unbounded k (`usize::MAX`) degrades to the full ranking.
#[test]
fn top_k_with_huge_k_equals_full_search() {
    let docs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i, i.wrapping_mul(3), 7]).collect();
    let coll = build(&docs, ModelKind::default(), 2);
    let full = coll.search("#or(telnet ftp nii)").unwrap();
    let top = coll
        .search_top_k("#or(telnet ftp nii)", usize::MAX)
        .unwrap();
    assert_eq!(full.len(), top.len());
    for (f, t) in full.iter().zip(top.iter()) {
        assert_eq!(f.key, t.key);
        assert_eq!(f.score.to_bits(), t.score.to_bits());
    }
}
