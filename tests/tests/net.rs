//! Loopback integration tests for the TCP front-end: real sockets over
//! `serve::NetServer`, exercising multi-client traffic, wire-level
//! error statuses, graceful drain, and hostile bytes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use coupling::tasks::{TaskKind, TaskStatus};
use coupling::{CollectionSetup, ErrorKind, MixedStrategy, SharedSystem};
use irs::FaultPlan;
use serve::wire::{self, FrameKind};
use serve::{Client, ClientError, NetServer, Request, Response, Server, ServerConfig, Status};
use system_tests::two_issue_system;

fn start_net(config: ServerConfig) -> NetServer {
    NetServer::bind(Server::start(two_issue_system(), config), "127.0.0.1:0")
        .expect("bind loopback")
}

/// Multi-client smoke over real sockets: concurrent queries from
/// several connections, a write through the wire, and the write's
/// visibility to subsequent reads.
#[test]
fn multi_client_query_and_write_over_the_wire() {
    let net = start_net(ServerConfig::default().read_workers(4).queue_capacity(64));
    let addr = net.local_addr();

    let clients = 5;
    let per_client = 6;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..per_client {
                    if (c + i) % 2 == 0 {
                        let resp = client
                            .call(&Request::IrsQuery {
                                collection: "collPara".into(),
                                query: "telnet".into(),
                            })
                            .expect("query over the wire");
                        let Response::IrsResult { hits, .. } = resp else {
                            panic!("wrong response variant");
                        };
                        assert_eq!(hits.len(), 2, "both telnet paragraphs");
                    } else {
                        let resp = client
                            .call(&Request::MixedQuery {
                                collection: "collPara".into(),
                                class: "PARA".into(),
                                irs_query: "www".into(),
                                threshold: 0.45,
                                strategy: MixedStrategy::IrsFirst,
                            })
                            .expect("mixed query over the wire");
                        let Response::Mixed { oids, .. } = resp else {
                            panic!("wrong response variant");
                        };
                        assert_eq!(oids.len(), 2, "both www paragraphs");
                    }
                }
            });
        }
    });

    // A write through the wire: find a paragraph via a query response
    // (everything stays on the protocol — no in-process peeking).
    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .call(&Request::IrsQuery {
            collection: "collPara".into(),
            query: "telnet".into(),
        })
        .expect("query");
    let Response::IrsResult { hits, .. } = resp else {
        panic!("wrong response variant");
    };
    let oid = hits[0].0;
    let task = client
        .write_and_wait(
            TaskKind::UpdateText {
                oid,
                text: "zeppelin airships drift over the network".into(),
                collections: vec!["collPara".into()],
            },
            Duration::from_secs(10),
        )
        .expect("update task over the wire");
    assert_eq!(task.status, TaskStatus::Succeeded);
    let resp = client
        .call(&Request::IrsQuery {
            collection: "collPara".into(),
            query: "zeppelin".into(),
        })
        .expect("query sees the write");
    let Response::IrsResult { hits, .. } = resp else {
        panic!("wrong response variant");
    };
    assert_eq!(hits.len(), 1, "write visible through the wire");

    let snapshot = net.shutdown();
    // Queries + the enqueue itself, plus however many status polls the
    // wait needed — each is a completed request in its own right.
    let total = (clients * per_client + 3) as u64;
    assert!(
        snapshot.completed >= total,
        "expected at least {total} completed, got {}",
        snapshot.completed
    );
    assert_eq!(snapshot.failed, 0);
    assert_eq!(snapshot.tasks_succeeded, 1);
    assert_eq!(snapshot.tasks_failed, 0);
}

/// Typed errors cross the wire with the right status: an unknown
/// collection is a 404-analogue, a malformed query a 400-analogue, and
/// the client's `ErrorKind` mapping matches the in-process taxonomy.
#[test]
fn remote_errors_carry_wire_statuses() {
    let net = start_net(ServerConfig::default().read_workers(2));
    let mut client = Client::connect(net.local_addr()).expect("connect");

    let err = client
        .call(&Request::IrsQuery {
            collection: "ghost".into(),
            query: "telnet".into(),
        })
        .expect_err("unknown collection");
    assert_eq!(err.status(), Some(Status::NotFound));
    assert_eq!(err.kind(), ErrorKind::NotFound);

    let err = client
        .call(&Request::IrsQuery {
            collection: "collPara".into(),
            query: "#and(".into(),
        })
        .expect_err("unparsable query");
    assert_eq!(err.status(), Some(Status::BadRequest));
    assert_eq!(err.kind(), ErrorKind::Parse);

    // The connection survives typed errors: a good request still works.
    let resp = client
        .call(&Request::IrsQuery {
            collection: "collPara".into(),
            query: "telnet".into(),
        })
        .expect("connection still usable");
    assert!(matches!(resp, Response::IrsResult { .. }));
    net.shutdown();
}

/// Overload maps to the 429-analogue on the wire: with the workers
/// wedged behind the system write lock, excess concurrent client calls
/// are refused with `Status::Overloaded` instead of queueing.
#[test]
fn overload_maps_to_429_analogue() {
    let shared = SharedSystem::new(two_issue_system());
    let server = Server::start_shared(
        shared.clone(),
        ServerConfig::default().read_workers(2).queue_capacity(2),
    );
    let net = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");
    let addr = net.local_addr();
    let total = 8;

    // While the exclusive lock is held, workers block before touching a
    // collection: at most `workers + capacity` calls are admitted, the
    // rest must bounce with 429. The admitted calls cannot finish until
    // the lock clears, so the threads are joined only after `write`
    // returns.
    let handles: Vec<_> = shared.write(|_sys| {
        let handles: Vec<_> = (0..total)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.call(&Request::IrsQuery {
                        collection: "collPara".into(),
                        query: "telnet".into(),
                    })
                })
            })
            .collect();
        // Let every call reach admission control while the lock is
        // still held (rejected calls return even under the lock).
        std::thread::sleep(Duration::from_millis(300));
        handles
    });
    let outcomes: Vec<Result<Response, ClientError>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut ok = 0;
    let mut overloaded = 0;
    for outcome in outcomes {
        match outcome {
            Ok(_) => ok += 1,
            Err(err) => {
                assert_eq!(err.status(), Some(Status::Overloaded), "unexpected: {err}");
                assert_eq!(err.kind(), ErrorKind::Overloaded);
                overloaded += 1;
            }
        }
    }
    assert_eq!(ok + overloaded, total);
    assert!(
        overloaded >= 2,
        "overflow beyond queue+workers bounces ({overloaded})"
    );
    assert!(
        ok >= 2,
        "admitted requests complete once the lock clears ({ok})"
    );

    let snapshot = net.shutdown();
    assert_eq!(snapshot.rejected_overload, overloaded as u64);
}

/// Graceful drain: a request in flight when shutdown starts still gets
/// its response before the connection closes.
#[test]
fn shutdown_drains_live_connections() {
    let mut sys = two_issue_system();
    sys.create_collection("collSlow", CollectionSetup::default())
        .unwrap();
    sys.index_collection("collSlow", "ACCESS p FROM p IN PARA")
        .unwrap();
    // Every IRS call on the slow collection stalls, modelling a remote
    // IRS: the in-flight request is provably mid-execution at shutdown.
    sys.collection_mut("collSlow")
        .unwrap()
        .inject_faults(Some(Arc::new(
            FaultPlan::new(5).with_latency(Duration::from_millis(60)),
        )));
    let net = NetServer::bind(
        Server::start(sys, ServerConfig::default().read_workers(2)),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = net.local_addr();

    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.call(&Request::IrsQuery {
            collection: "collSlow".into(),
            query: "telnet".into(),
        })
    });
    // Let the request reach a worker, then shut down underneath it.
    std::thread::sleep(Duration::from_millis(20));
    let snapshot = net.shutdown();

    let resp = in_flight
        .join()
        .unwrap()
        .expect("in-flight request drained, not dropped");
    let Response::IrsResult { hits, .. } = resp else {
        panic!("wrong response variant");
    };
    assert_eq!(hits.len(), 2);
    assert_eq!(snapshot.completed, 1);
    assert_eq!(snapshot.failed, 0);
}

/// Hostile bytes: malformed frames produce a 400-analogue error frame
/// or a clean close — never a panic or a hang — and the server keeps
/// serving well-formed clients afterwards.
#[test]
fn malformed_frames_answered_then_closed_never_panic() {
    let net = start_net(ServerConfig::default().read_workers(2));
    let addr = net.local_addr();

    let read_reply = |stream: &mut TcpStream| -> Option<wire::Frame> {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        wire::read_frame(stream).ok().flatten()
    };

    // Bad magic.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"JUNKJUNKJUNKJUNKJUNK").unwrap();
        let frame = read_reply(&mut s).expect("error frame");
        assert_eq!(frame.kind, FrameKind::Error);
        let fault = wire::decode_fault(&frame.payload).unwrap();
        assert_eq!(fault.status, Status::BadRequest);
    }

    // Valid header, corrupted payload (CRC mismatch).
    {
        let mut buf = Vec::new();
        wire::write_frame(
            &mut buf,
            FrameKind::Request,
            &wire::encode_request(&Request::IrsQuery {
                collection: "collPara".into(),
                query: "telnet".into(),
            }),
        )
        .unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&buf).unwrap();
        let frame = read_reply(&mut s).expect("error frame");
        let fault = wire::decode_fault(&frame.payload).unwrap();
        assert_eq!(fault.status, Status::BadRequest);
    }

    // Over-cap declared length: refused from the header alone.
    {
        let mut header = Vec::new();
        header.extend_from_slice(&wire::MAGIC);
        header.push(wire::VERSION);
        header.push(0); // request
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&header).unwrap();
        let frame = read_reply(&mut s).expect("error frame");
        let fault = wire::decode_fault(&frame.payload).unwrap();
        assert_eq!(fault.status, Status::BadRequest);
    }

    // Well-framed but undecodable payload (unknown request tag).
    {
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, FrameKind::Request, &[250, 1, 2, 3]).unwrap();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&buf).unwrap();
        let frame = read_reply(&mut s).expect("error frame");
        let fault = wire::decode_fault(&frame.payload).unwrap();
        assert_eq!(fault.status, Status::BadRequest);
    }

    // Truncated frame then close: the server just drops the connection.
    {
        let mut buf = Vec::new();
        wire::write_frame(
            &mut buf,
            FrameKind::Request,
            &wire::encode_request(&Request::IrsQuery {
                collection: "collPara".into(),
                query: "telnet".into(),
            }),
        )
        .unwrap();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&buf[..buf.len() - 3]).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink); // EOF or error frame, no hang
    }

    // After all that abuse, a healthy client still gets served.
    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .call(&Request::IrsQuery {
            collection: "collPara".into(),
            query: "telnet".into(),
        })
        .expect("server survived the fuzzing");
    assert!(matches!(resp, Response::IrsResult { .. }));
    net.shutdown();
}

/// A zero deadline configured as the server default is rejected at
/// admission with the 504-analogue, without burning a queue slot.
#[test]
fn pre_expired_deadline_rejected_at_admission() {
    let server = Server::start(
        two_issue_system(),
        ServerConfig::default()
            .read_workers(1)
            .default_deadline(Duration::ZERO),
    );
    let err = server
        .call(Request::IrsQuery {
            collection: "collPara".into(),
            query: "telnet".into(),
        })
        .expect_err("deadline was already expired at submit");
    assert_eq!(err.kind(), ErrorKind::Timeout);
    let snapshot = server.shutdown();
    assert_eq!(snapshot.deadline_timeouts, 1);
    assert_eq!(snapshot.submitted, 0, "never admitted to a queue");

    // And over the wire the same rejection is the 504-analogue.
    let net = NetServer::bind(
        Server::start(
            two_issue_system(),
            ServerConfig::default().default_deadline(Duration::ZERO),
        ),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let mut client = Client::connect(net.local_addr()).expect("connect");
    let err = client
        .call(&Request::IrsQuery {
            collection: "collPara".into(),
            query: "telnet".into(),
        })
        .expect_err("504 over the wire");
    assert_eq!(err.status(), Some(Status::Timeout));
    assert_eq!(err.kind(), ErrorKind::Timeout);
    net.shutdown();
}
