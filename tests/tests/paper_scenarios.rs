//! Scenario tests tracking the paper's worked examples and claims
//! through the public API only.

use coupling::architecture::{evaluate as arch_evaluate, ArchitectureKind};
use coupling::mixed::{evaluate_mixed, MixedStrategy};
use coupling::ops;
use coupling::{CollectionSetup, DerivationScheme, DocumentSystem};
use oodb::{Database, Oid};

/// Build Figure 4's four documents with equal-length paragraphs; only
/// paragraphs are indexed.
fn figure4() -> (DocumentSystem, Vec<Oid>) {
    fn para(terms: &[&str]) -> String {
        let mut words: Vec<String> = (0..20).map(|i| format!("filler{i:02}")).collect();
        for (i, t) in terms.iter().enumerate() {
            words[3 + 5 * i] = (*t).to_string();
        }
        format!("<PARA>{}</PARA>", words.join(" "))
    }
    let mut sys = DocumentSystem::new();
    let bodies = [
        format!("{}{}{}", para(&["www"]), para(&["www"]), para(&[])),
        format!("{}{}{}", para(&["www", "nii"]), para(&[]), para(&[])),
        format!("{}{}", para(&["www"]), para(&["nii"])),
        format!("{}{}{}", para(&["nii"]), para(&["nii"]), para(&[])),
    ];
    let mut roots = Vec::new();
    for (i, body) in bodies.iter().enumerate() {
        let doc = format!("<MMFDOC><DOCTITLE>M{}</DOCTITLE>{}</MMFDOC>", i + 1, body);
        roots.push(sys.load_sgml(&doc).unwrap().root);
    }
    sys.create_collection("collPara", CollectionSetup::default())
        .unwrap();
    sys.index_collection("collPara", "ACCESS p FROM p IN PARA")
        .unwrap();
    (sys, roots)
}

#[test]
fn figure4_subquery_aware_ranking_through_query_language() {
    let (sys, roots) = figure4();
    sys.collection_mut("collPara")
        .unwrap()
        .set_derivation(DerivationScheme::SubqueryAware);
    // "Select all MMF documents which are relevant to 'WWW' and 'NII'" —
    // via the query language, ranking by derived value.
    let rows = sys
        .query("ACCESS d, d -> getIRSValue(collPara, '#and(www nii)') FROM d IN MMFDOC")
        .unwrap();
    let mut scored: Vec<(Oid, f64)> = rows
        .iter()
        .map(|r| (r.oid().unwrap(), r.col(1).as_f64().unwrap()))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    // M2 first (or tied with M3), M3 strictly above M4.
    let pos = |oid: Oid| scored.iter().position(|(o, _)| *o == oid).unwrap();
    assert!(pos(roots[1]) <= pos(roots[2]), "M2 at or above M3");
    assert!(pos(roots[2]) < pos(roots[3]), "M3 above M4");
}

#[test]
fn figure4_max_conflates_m3_and_m4() {
    let (sys, roots) = figure4();
    let values: Vec<f64> = {
        let mut coll = sys.collection_mut("collPara").unwrap();
        coll.set_derivation(DerivationScheme::Max);
        let ctx = coll.db().method_ctx();
        roots
            .iter()
            .map(|&r| coll.get_irs_value(&ctx, "#and(www nii)", r).unwrap())
            .collect()
    };
    assert!(values[1] > values[2], "M2 beats M3 under max");
    assert!(
        (values[2] - values[3]).abs() < 1e-9,
        "max cannot separate M3 ({}) from M4 ({})",
        values[2],
        values[3]
    );
}

#[test]
fn all_architectures_and_strategies_agree_end_to_end() {
    let sys = system_tests::two_issue_system();
    let structural = |db: &Database, oid: Oid| {
        let ctx = db.method_ctx();
        matches!(
            db.methods()
                .invoke(&ctx, "getContaining", oid, &[oodb::Value::from("MMFDOC")]),
            Ok(oodb::Value::Oid(_))
        )
    };
    let mut all_results: Vec<Vec<Oid>> = Vec::new();
    {
        let mut coll = sys.collection_mut("collPara").unwrap();
        let db = coll.db();
        for kind in [
            ArchitectureKind::DbmsControl,
            ArchitectureKind::ControlModule,
            ArchitectureKind::IrsControl,
        ] {
            let out = arch_evaluate(kind, db, &mut coll, "PARA", &structural, "www", 0.45).unwrap();
            all_results.push(out.oids);
        }
        for strategy in [MixedStrategy::Independent, MixedStrategy::IrsFirst] {
            let out =
                evaluate_mixed(db, &coll, "PARA", &structural, "www", 0.45, strategy).unwrap();
            all_results.push(out.oids);
        }
    }
    for w in all_results.windows(2) {
        assert_eq!(w[0], w[1], "every evaluation path returns the same objects");
    }
    assert!(!all_results[0].is_empty());
}

#[test]
fn oodbms_operator_methods_match_irs_for_all_operators() {
    let sys = system_tests::two_issue_system();
    {
        let coll = sys.collection("collPara").unwrap();
        let www = coll.get_irs_result("www").unwrap();
        let nii = coll.get_irs_result("nii").unwrap();
        let cases: Vec<(&str, coupling::buffer::ResultMap)> = vec![
            ("#and(www nii)", ops::irs_and(&[&www, &nii])),
            ("#or(www nii)", ops::irs_or(&[&www, &nii])),
            ("#sum(www nii)", ops::irs_sum(&[&www, &nii])),
            ("#max(www nii)", ops::irs_max(&[&www, &nii])),
            (
                "#wsum(2 www 1 nii)",
                ops::irs_wsum(&[2.0, 1.0], &[&www, &nii]),
            ),
        ];
        for (query, oodbms_side) in cases {
            let irs_side = coll.get_irs_result(query).unwrap();
            for (oid, v) in &irs_side {
                let c = oodbms_side.get(oid).copied().unwrap_or(0.0);
                assert!((c - v).abs() < 1e-9, "{query}: {oid} IRS {v} vs OODBMS {c}");
            }
        }
    }
}

#[test]
fn overlapping_collections_stay_independent() {
    let mut sys = system_tests::two_issue_system();
    // A second, overlapping collection over 1994 paragraphs only.
    sys.create_collection("coll94", CollectionSetup::default())
        .unwrap();
    sys.index_collection(
        "coll94",
        "ACCESS p FROM p IN PARA, d IN MMFDOC WHERE \
         p -> getContaining('MMFDOC') == d AND d -> getAttributeValue('YEAR') = '1994'",
    )
    .unwrap();
    let n_all = sys.collection("collPara").unwrap().len();
    let n_94 = sys.collection("coll94").unwrap().len();
    assert_eq!(n_all, 4);
    assert_eq!(n_94, 2);
    // Same object, different collection statistics are possible: the
    // 1995 paragraphs simply are not in coll94.
    let www_all = sys
        .collection("collPara")
        .unwrap()
        .get_irs_result("www")
        .unwrap()
        .len();
    let www_94 = sys
        .collection("coll94")
        .unwrap()
        .get_irs_result("www")
        .unwrap()
        .len();
    assert_eq!(www_all, 2);
    assert_eq!(www_94, 0);
}

#[test]
fn negation_semantics_differ_between_worlds() {
    // Paper Section 6: "Negation, for example, has a different meaning in
    // both worlds." Structural NOT (closed world) excludes anything not
    // provably matching; IRS #not (open world, inference network) merely
    // lowers belief — a document weakly mentioning the term still gets a
    // nonzero complement belief.
    let sys = system_tests::two_issue_system();

    // Closed world: the OODBMS's NOT gives a crisp complement set.
    let all = sys.query("ACCESS p FROM p IN PARA").unwrap().len();
    let with_www = sys
        .query("ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.45")
        .unwrap()
        .len();
    let without_www = sys
        .query("ACCESS p FROM p IN PARA WHERE NOT p -> getIRSValue(collPara, 'www') > 0.45")
        .unwrap()
        .len();
    assert_eq!(
        with_www + without_www,
        all,
        "closed-world NOT partitions the extent"
    );

    // Open world: the IRS's #not assigns graded complements — paragraphs
    // containing www get low-but-positive beliefs, the rest sit at the
    // complement of the default belief.
    let complement = sys
        .collection("collPara")
        .unwrap()
        .get_irs_result("#not(www)")
        .unwrap();
    assert_eq!(complement.len(), 4, "every live paragraph gets a belief");
    let values: Vec<f64> = complement.values().copied().collect();
    assert!(values.iter().all(|v| (0.0..=1.0).contains(v)));
    assert!(
        values.iter().any(|&v| v > 0.0 && v < 1.0),
        "open-world negation is graded, not crisp: {values:?}"
    );
}

#[test]
fn multimedia_retrieval_via_captions() {
    // Paper Section 5: "A practicable approach to facilitate information
    // retrieval from images … is having the text fragments as IRS
    // documents that reference the image" — here, figure captions.
    let mut sys = DocumentSystem::new();
    sys.load_sgml(
        "<MMFDOC><DOCTITLE>Atlas</DOCTITLE>\
         <FIGURE SRC=\"map1.gif\"><CAPTION>network topology of the early internet</CAPTION></FIGURE>\
         <FIGURE SRC=\"map2.gif\"><CAPTION>growth of www servers by year</CAPTION></FIGURE>\
         <PARA>body text about unrelated matters</PARA></MMFDOC>",
    )
    .unwrap();
    sys.create_collection("figures", CollectionSetup::default())
        .unwrap();
    // Specification query selects the image objects; getText(FullSubtree)
    // surfaces their caption text.
    let n = sys
        .index_collection("figures", "ACCESS f FROM f IN FIGURE")
        .unwrap();
    assert_eq!(n, 2);
    let rows = sys
        .query(
            "ACCESS f -> getAttributeValue('SRC') FROM f IN FIGURE \
             WHERE f -> getIRSValue(figures, 'topology') > 0.4",
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].col(0).as_str().unwrap(), "map1.gif");
}

#[test]
fn top_k_ranking_via_order_by_derived_value() {
    // ORDER BY + LIMIT over derived IRS values: the "top documents"
    // interaction every digital library needs.
    let (sys, roots) = figure4();
    sys.collection_mut("collPara")
        .unwrap()
        .set_derivation(DerivationScheme::SubqueryAware);
    let rows = sys
        .query(
            "ACCESS d FROM d IN MMFDOC \
             ORDER BY d -> getIRSValue(collPara, '#and(www nii)') DESC LIMIT 2",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    let top: Vec<Oid> = rows.iter().map(|r| r.oid().unwrap()).collect();
    assert!(top.contains(&roots[1]), "M2 in the top 2");
    assert!(top.contains(&roots[2]), "M3 recovered into the top 2");
}

#[test]
fn specification_query_can_use_any_predicate() {
    // "The specification query is an OODBMS query expression and thus is
    // powerful enough to specify any reasonable combination of objects."
    let mut sys = system_tests::two_issue_system();
    sys.create_collection("longParas", CollectionSetup::default())
        .unwrap();
    let n = sys
        .index_collection(
            "longParas",
            "ACCESS p FROM p IN PARA WHERE p -> length() > 45",
        )
        .unwrap();
    let total = sys.collection("collPara").unwrap().len();
    assert!(
        n >= 1 && n < total,
        "length predicate filtered some paragraphs ({n}/{total})"
    );
}
