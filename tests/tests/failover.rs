//! Failover suite: remote IRS replicas under deterministic network
//! chaos.
//!
//! Two [`ReplicaServer`]s serve the same frozen document system; every
//! client byte flows through a [`ChaosProxy`] so the tests can
//! black-hole, reset, truncate, or delay connections reproducibly. On
//! top sits [`RemoteIrs`] with [`WireTransport`]s — the hedged fan-out
//! whose behaviour under partial failure is what this file pins down:
//!
//! * a healthy pair answers with the same top-k as a local evaluation;
//! * one black-holed replica costs at most the hedge delay, never the
//!   full attempt timeout, and the hedge is visible in the metrics;
//! * with every replica gone, warmed queries degrade to
//!   [`ResultOrigin::Stale`] and cold queries fail transiently;
//! * the plain [`Client`] survives server restarts (reconnect), half-
//!   closed sockets, and requests pipelined behind a drain (503, not a
//!   hang);
//! * seeded chaos schedules are deterministic, and a full query sweep
//!   under mixed faults reproduces the same outcome pattern run-to-run.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coupling::remote::{RemoteConfig, RemoteIrs};
use coupling::retry::{BreakerConfig, RetryPolicy};
use coupling::tasks::TaskKind;
use coupling::{ErrorKind, ResultOrigin, SharedSystem};
use irs::FaultPlan;
use oodb::Oid;
use serve::wire::{
    decode_fault, decode_response, encode_request, read_frame, write_frame, FrameKind,
};
use serve::{
    ChaosMode, ChaosPlan, ChaosProxy, Client, ClientConfig, NetServer, ReplicaServer, Request,
    Response, Server, ServerConfig, Status,
};
use system_tests::two_issue_system;

/// Socket bounds tight enough that an abandoned attempt's thread
/// unblocks well before the test budget runs out.
fn tight_client() -> ClientConfig {
    ClientConfig::builder()
        .connect_timeout(Duration::from_millis(500))
        .read_timeout(Duration::from_millis(250))
        .write_timeout(Duration::from_millis(250))
        .build()
}

/// Fan-out tuning for tests: hedge at 40ms, whole-read deadline 340ms.
fn tight_remote() -> RemoteConfig {
    RemoteConfig {
        hedge_delay: Duration::from_millis(40),
        attempt_timeout: Duration::from_millis(300),
        max_attempts: 4,
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            call_budget: Duration::from_millis(400),
            jitter_seed: 0x5eed,
        },
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(150),
        },
        stale_capacity: 16,
    }
}

/// The latency ceiling the issue demands: hedge delay + per-request
/// timeout, plus slack for thread scheduling on a loaded CI box.
fn latency_ceiling(config: &RemoteConfig) -> Duration {
    config.hedge_delay + config.attempt_timeout + Duration::from_millis(400)
}

/// Two replicas of the shared test corpus, each behind its own chaos
/// proxy; clients must dial the proxy address.
fn replica_pair(plans: [ChaosPlan; 2]) -> (Vec<ReplicaServer>, Vec<ChaosProxy>) {
    let mut servers = Vec::new();
    let mut proxies = Vec::new();
    for plan in plans {
        let server = ReplicaServer::serve(two_issue_system(), "127.0.0.1:0").expect("bind replica");
        let proxy = ChaosProxy::start(server.local_addr(), plan).expect("bind proxy");
        servers.push(server);
        proxies.push(proxy);
    }
    (servers, proxies)
}

fn remote_over(proxies: &[ChaosProxy], config: RemoteConfig) -> RemoteIrs<serve::WireTransport> {
    let replicas = proxies
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                format!("replica-{i}"),
                serve::WireTransport::with_config(p.local_addr(), tight_client()),
            )
        })
        .collect();
    RemoteIrs::new(replicas, config)
}

/// What a local (in-process) evaluation of `query` returns, sorted the
/// way the wire protocol sorts: score descending, OID ascending.
fn local_top_k(query: &str) -> Vec<(Oid, f64)> {
    let sys = two_issue_system();
    let coll = sys.collection("collPara").expect("test collection");
    let mut hits: Vec<(Oid, f64)> = coll
        .get_irs_result(query)
        .expect("local evaluation")
        .into_iter()
        .collect();
    hits.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    hits
}

/// A healthy pair answers fresh results identical to a local
/// evaluation, for both ranked search and single-object values; probing
/// sees both replicas; and a replica refuses writes with a permanent
/// (non-failover) classification.
#[test]
fn replica_pair_serves_fresh_correct_results() {
    let (servers, proxies) = replica_pair([ChaosPlan::new(1), ChaosPlan::new(2)]);
    let remote = remote_over(&proxies, tight_remote());

    let expected = local_top_k("telnet");
    assert_eq!(expected.len(), 2, "corpus sanity");
    let (hits, origin) = remote.search_top_k("collPara", "telnet").expect("search");
    assert_eq!(hits, expected);
    assert_eq!(origin, ResultOrigin::Fresh);

    for &(oid, score) in &expected {
        let (value, origin) = remote
            .get_irs_value("collPara", "telnet", oid)
            .expect("value");
        assert!((value - score).abs() < 1e-9, "value matches ranked score");
        assert_eq!(origin, ResultOrigin::Fresh);
    }

    let probe = remote.probe();
    assert_eq!(probe.len(), 2);
    assert!(probe.iter().all(|(_, up)| *up), "both replicas reachable");

    // Writes bounce at admission with a *permanent* classification —
    // a read-only replica must not make the fan-out try its sibling,
    // which is just as read-only.
    let mut client = Client::connect_with(proxies[0].local_addr(), tight_client()).expect("dial");
    let err = client
        .call(&Request::EnqueueTask {
            kind: TaskKind::UpdateText {
                oid: expected[0].0,
                text: "rewritten".into(),
                collections: vec!["collPara".into()],
            },
        })
        .expect_err("replica must refuse writes");
    assert_eq!(err.status(), Some(Status::BadRequest));
    assert!(
        !coupling::CouplingError::Remote {
            kind: err.kind(),
            message: String::new(),
        }
        .is_transient(),
        "write rejection classifies permanent, got {:?}",
        err.kind()
    );

    drop(remote);
    for p in proxies {
        p.shutdown();
    }
    for s in servers {
        s.shutdown();
    }
}

/// One of two replicas black-holed: every query still succeeds with the
/// correct fresh top-k, the hedge fires visibly in the metrics, and no
/// request waits longer than hedge delay + per-request timeout.
#[test]
fn black_holed_replica_hedges_and_stays_within_bounds() {
    let (servers, proxies) = replica_pair([ChaosPlan::new(3), ChaosPlan::new(4)]);
    // Replica 0 is ranked first (registration order on a cold engine) —
    // black-holing it forces the first request through the hedge path.
    proxies[0].plan().force(Some(ChaosMode::Blackhole));
    let config = tight_remote();
    let ceiling = latency_ceiling(&config);
    let remote = remote_over(&proxies, config);

    let expected = local_top_k("telnet");
    for i in 0..8 {
        let started = Instant::now();
        let (hits, origin) = remote
            .search_top_k("collPara", "telnet")
            .unwrap_or_else(|e| panic!("query {i} failed under single-replica loss: {e}"));
        let elapsed = started.elapsed();
        assert_eq!(hits, expected, "query {i} returns the correct top-k");
        // Repeats of the same query may come from the replica's result
        // buffer — that is still a live answer, not degradation.
        assert_ne!(origin, ResultOrigin::Stale, "query {i} is live");
        assert!(
            elapsed < ceiling,
            "query {i} took {elapsed:?}, ceiling {ceiling:?}"
        );
    }

    let stats = remote.stats();
    assert_eq!(stats.requests, 8);
    assert!(
        stats.hedges_fired >= 1,
        "hedge must fire for the black-holed primary: {stats:?}"
    );
    assert!(
        stats.hedge_wins >= 1,
        "the healthy replica's answer wins: {stats:?}"
    );
    assert_eq!(stats.stale_serves, 0, "no degradation to stale: {stats:?}");

    // The black-holed replica's abandoned attempts fed its EWMA, so the
    // engine stopped picking it as primary: later queries are answered
    // at healthy-path latency, not hedge-delay latency.
    let health = remote.health();
    assert!(
        health[0].ewma_us > health[1].ewma_us,
        "black-holed replica ranks behind the healthy one: {health:?}"
    );

    drop(remote);
    for p in proxies {
        p.shutdown();
    }
    for s in servers {
        s.shutdown();
    }
}

/// Every replica unreachable: queries warmed while healthy degrade to
/// `ResultOrigin::Stale` (search and value both), cold queries fail
/// with a transient error, and the engine's counters say which is
/// which.
#[test]
fn all_replicas_down_serves_stale_for_warm_queries() {
    let (servers, proxies) = replica_pair([ChaosPlan::new(5), ChaosPlan::new(6)]);
    let remote = remote_over(&proxies, tight_remote());

    let expected = local_top_k("telnet");
    let (warm, origin) = remote.search_top_k("collPara", "telnet").expect("warm-up");
    assert_eq!(origin, ResultOrigin::Fresh);
    assert_eq!(warm, expected);

    // Take the world down: new connections black-hole at the proxy, and
    // shutting the replicas down severs the transports' cached
    // connections so they must redial into the black hole.
    for p in &proxies {
        p.plan().force(Some(ChaosMode::Blackhole));
    }
    for s in servers {
        s.shutdown();
    }

    let (hits, origin) = remote
        .search_top_k("collPara", "telnet")
        .expect("warmed query degrades, not fails");
    assert_eq!(origin, ResultOrigin::Stale);
    assert_eq!(hits, expected, "stale result is the last good answer");

    let (value, origin) = remote
        .get_irs_value("collPara", "telnet", expected[0].0)
        .expect("warmed value degrades too");
    assert_eq!(origin, ResultOrigin::Stale);
    assert!((value - expected[0].1).abs() < 1e-9);

    let err = remote
        .search_top_k("collPara", "www")
        .expect_err("cold query has nothing to fall back on");
    assert!(err.is_transient(), "outage classifies transient: {err}");

    let stats = remote.stats();
    assert!(
        stats.stale_serves >= 2,
        "stale fallbacks counted: {stats:?}"
    );
    assert!(
        stats.exhausted >= 1,
        "cold-query failure counted: {stats:?}"
    );

    for p in proxies {
        p.shutdown();
    }
}

/// The production entry point: a replica restarted from the primary's
/// snapshot directory serves the same answers as the system it was
/// saved from, and still refuses writes.
#[test]
fn replica_opened_from_snapshot_serves_saved_index() {
    let dir = std::env::temp_dir().join("coupling-failover-snapshot");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut sys = two_issue_system();
    coupling::save_system(&mut sys, &dir).expect("save snapshot");
    drop(sys);

    let replica = ReplicaServer::open(&dir, "127.0.0.1:0").expect("open replica from snapshot");
    let remote = RemoteIrs::new(
        vec![(
            "snap".to_string(),
            serve::WireTransport::with_config(replica.local_addr(), tight_client()),
        )],
        tight_remote(),
    );
    let (hits, origin) = remote.search_top_k("collPara", "telnet").expect("search");
    assert_eq!(hits, local_top_k("telnet"));
    assert_ne!(origin, ResultOrigin::Stale);

    let mut client = Client::connect_with(replica.local_addr(), tight_client()).expect("dial");
    let err = client
        .call(&Request::EnqueueTask {
            kind: TaskKind::UpdateText {
                oid: hits[0].0,
                text: "rewritten".into(),
                collections: vec!["collPara".into()],
            },
        })
        .expect_err("snapshot replica refuses writes");
    assert_eq!(err.status(), Some(Status::BadRequest));

    drop(remote);
    replica.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reserve a loopback port by binding port 0 and dropping the listener;
/// the server can then be restarted on a *known* address.
fn reserve_port() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("probe bind");
    listener.local_addr().expect("probe addr")
}

fn bind_on(addr: SocketAddr) -> NetServer {
    // The previous incarnation's socket may linger briefly after an
    // active close; retry the bind rather than flaking.
    let mut last = None;
    for _ in 0..50 {
        match NetServer::bind(
            Server::start(two_issue_system(), ServerConfig::default().read_workers(2)),
            addr,
        ) {
            Ok(net) => return net,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    panic!("could not rebind {addr}: {last:?}");
}

/// A client outlives a full server restart: the first call after the
/// outage fails cleanly (no hang), and `reconnect` restores service on
/// the same address.
#[test]
fn client_reconnects_after_server_restart() {
    let addr = reserve_port();
    let first = bind_on(addr);
    let mut client = Client::connect_with(addr, tight_client()).expect("dial");
    let request = Request::IrsQuery {
        collection: "collPara".into(),
        query: "telnet".into(),
    };
    assert!(matches!(
        client.call(&request),
        Ok(Response::IrsResult { .. })
    ));

    first.shutdown();

    // The dead connection fails determinately — connection-closed or a
    // socket error, never a hang — and classifies as I/O (transient).
    let started = Instant::now();
    let err = client.call(&request).expect_err("server is gone");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "failure is prompt, not a timeout-by-attrition"
    );
    assert!(
        matches!(err.kind(), ErrorKind::Io | ErrorKind::Timeout),
        "outage classifies as transport failure: {err}"
    );

    let second = bind_on(addr);
    client.reconnect().expect("redial restarted server");
    let resp = client.call(&request).expect("service restored");
    let Response::IrsResult { hits, origin } = resp else {
        panic!("wrong response variant");
    };
    assert_eq!(hits.len(), 2);
    assert_eq!(origin, ResultOrigin::Fresh);
    second.shutdown();
}

/// A client that half-closes its write side after sending a request
/// still gets the full response; the server then sees EOF and closes
/// cleanly instead of erroring or lingering.
#[test]
fn half_closed_client_still_receives_its_response() {
    let net = NetServer::bind(
        Server::start(two_issue_system(), ServerConfig::default().read_workers(2)),
        "127.0.0.1:0",
    )
    .expect("bind");
    let stream = TcpStream::connect(net.local_addr()).expect("dial");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let request = Request::IrsQuery {
        collection: "collPara".into(),
        query: "telnet".into(),
    };
    write_frame(&mut writer, FrameKind::Request, &encode_request(&request)).expect("send");
    writer.flush().unwrap();
    stream.shutdown(Shutdown::Write).expect("half-close");

    let frame = read_frame(&mut reader)
        .expect("response readable after half-close")
        .expect("response, not EOF");
    assert_eq!(frame.kind, FrameKind::Response);
    let Response::IrsResult { hits, .. } = decode_response(&frame.payload).expect("decode") else {
        panic!("wrong response variant");
    };
    assert_eq!(hits.len(), 2);

    // After answering, the server sees our EOF and closes its side.
    assert!(
        matches!(read_frame(&mut reader), Ok(None)),
        "server closes cleanly after client EOF"
    );
    net.shutdown();
}

/// A request pipelined behind an in-flight one when the drain begins is
/// answered with 503 (shutting down) — a determinate go-away, not a
/// hang and not a dropped connection.
#[test]
fn request_pipelined_behind_drain_gets_503_not_a_hang() {
    let mut sys = two_issue_system();
    sys.create_collection("collSlow", coupling::CollectionSetup::default())
        .unwrap();
    sys.index_collection("collSlow", "ACCESS p FROM p IN PARA")
        .unwrap();
    sys.collection_mut("collSlow")
        .unwrap()
        .inject_faults(Some(Arc::new(
            FaultPlan::new(5).with_latency(Duration::from_millis(150)),
        )));
    let shared = SharedSystem::new(sys);
    let net = NetServer::bind(
        Server::start_shared(shared, ServerConfig::default().read_workers(2)),
        "127.0.0.1:0",
    )
    .expect("bind");

    let stream = TcpStream::connect(net.local_addr()).expect("dial");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Request A stalls in the slow collection; request B is already in
    // the kernel's receive buffer when the drain half-closes our socket.
    let slow = Request::IrsQuery {
        collection: "collSlow".into(),
        query: "telnet".into(),
    };
    let fast = Request::IrsQuery {
        collection: "collPara".into(),
        query: "telnet".into(),
    };
    write_frame(&mut writer, FrameKind::Request, &encode_request(&slow)).unwrap();
    write_frame(&mut writer, FrameKind::Request, &encode_request(&fast)).unwrap();
    writer.flush().unwrap();

    // Let A reach a worker, then drain underneath the pipeline.
    std::thread::sleep(Duration::from_millis(40));
    let drain = std::thread::spawn(move || net.shutdown());

    let started = Instant::now();
    let first = read_frame(&mut reader)
        .expect("in-flight request drains")
        .expect("response for A");
    assert_eq!(first.kind, FrameKind::Response, "A completes normally");

    let second = read_frame(&mut reader)
        .expect("pipelined request gets an answer")
        .expect("error frame for B, not silence");
    assert_eq!(second.kind, FrameKind::Error);
    let fault = decode_fault(&second.payload).expect("decode fault");
    assert_eq!(fault.status, Status::ShuttingDown, "B is told to go away");
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "drain answered promptly"
    );
    drain.join().unwrap();
}

/// Pinned chaos regressions: a truncated response surfaces as a clean
/// transport error, a reset connection likewise, and once the fault
/// clears the same client path recovers by redialing.
#[test]
fn truncation_and_reset_surface_clean_errors_then_recover() {
    let server = ReplicaServer::serve(two_issue_system(), "127.0.0.1:0").expect("bind replica");
    let proxy = ChaosProxy::start(server.local_addr(), ChaosPlan::new(7)).expect("bind proxy");
    let request = Request::IrsQuery {
        collection: "collPara".into(),
        query: "telnet".into(),
    };

    // Truncation mid-frame: the response dies at byte 10 (inside the
    // 14-byte header), so the client reads EOF mid-header.
    proxy.plan().force(Some(ChaosMode::Truncate(10)));
    let mut client = Client::connect_with(proxy.local_addr(), tight_client()).expect("dial");
    let err = client.call(&request).expect_err("truncated response");
    assert!(
        matches!(err.kind(), ErrorKind::Io | ErrorKind::Timeout),
        "truncation is a transport error: {err}"
    );

    // Reset: the proxy closes before a single byte. The write may land
    // in buffers, but the read sees the close immediately.
    proxy.plan().force(Some(ChaosMode::Reset));
    let mut client = Client::connect_with(proxy.local_addr(), tight_client()).expect("dial");
    let started = Instant::now();
    let err = client.call(&request).expect_err("reset connection");
    assert!(matches!(err.kind(), ErrorKind::Io | ErrorKind::Timeout));
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "reset fails fast, not by timeout"
    );

    // Fault cleared: a fresh dial works again.
    proxy.plan().force(None);
    let mut client = Client::connect_with(proxy.local_addr(), tight_client()).expect("dial");
    let resp = client.call(&request).expect("recovered");
    assert!(matches!(resp, Response::IrsResult { .. }));

    assert!(proxy.plan().injected() >= 2, "both faults were injected");
    proxy.shutdown();
    server.shutdown();
}

/// One full sweep of queries through a seeded mixed-fault proxy.
/// Returns `(ok, origin)` per query; panics on any non-transient error,
/// over-ceiling latency, or wrong result.
fn chaos_sweep(seed: u64) -> Vec<(bool, Option<ResultOrigin>)> {
    let server = ReplicaServer::serve(two_issue_system(), "127.0.0.1:0").expect("bind replica");
    let plan = ChaosPlan::new(seed)
        .with_reset_rate(0.25)
        .with_truncate(0.2, 20)
        .with_delay(0.3, Duration::from_millis(10));
    let proxy = ChaosProxy::start(server.local_addr(), plan).expect("bind proxy");
    let mut config = tight_remote();
    // Keep the breaker out of the sweep: its cooldown is wall-clock
    // time, which would make the outcome pattern timing-dependent. The
    // breaker has its own dedicated tests.
    config.breaker.failure_threshold = 100;
    let ceiling = latency_ceiling(&config);
    let remote = remote_over(std::slice::from_ref(&proxy), config);

    let expected_telnet = local_top_k("telnet");
    let expected_www = local_top_k("www");
    let mut outcomes = Vec::new();
    for i in 0..16u32 {
        let query = if i % 2 == 0 { "telnet" } else { "www" };
        let expected = if i % 2 == 0 {
            &expected_telnet
        } else {
            &expected_www
        };
        let started = Instant::now();
        let outcome = remote.search_top_k("collPara", query);
        let elapsed = started.elapsed();
        assert!(
            elapsed < ceiling,
            "query {i} took {elapsed:?} under chaos, ceiling {ceiling:?}"
        );
        match outcome {
            Ok((hits, origin)) => {
                assert_eq!(&hits, expected, "query {i}: degraded, never wrong");
                outcomes.push((true, Some(origin)));
            }
            Err(e) => {
                assert!(e.is_transient(), "query {i}: chaos error is transient: {e}");
                outcomes.push((false, None));
            }
        }
    }

    proxy.shutdown();
    server.shutdown();
    outcomes
}

/// The chaos schedule is a pure function of the seed, and a whole sweep
/// of queries under mixed faults reproduces the same per-query outcome
/// pattern when re-run from scratch with the same seed.
#[test]
fn seeded_chaos_sweep_is_deterministic_and_never_wrong() {
    let mk = || {
        ChaosPlan::new(0xC4A0_5EED)
            .with_reset_rate(0.25)
            .with_truncate(0.2, 20)
            .with_delay(0.3, Duration::from_millis(10))
    };
    let (a, b) = (mk(), mk());
    let schedule: Vec<ChaosMode> = (0..64).map(|c| a.mode_for(c)).collect();
    assert_eq!(
        schedule,
        (0..64).map(|c| b.mode_for(c)).collect::<Vec<_>>(),
        "same seed, same schedule"
    );
    assert!(
        schedule.iter().any(|m| *m != ChaosMode::Pass),
        "the pinned seed actually injects faults"
    );

    let first = chaos_sweep(0xC4A0_5EED);
    let second = chaos_sweep(0xC4A0_5EED);
    assert_eq!(
        first, second,
        "identical seed reproduces the sweep's outcome pattern"
    );
    assert!(
        first.iter().any(|(ok, _)| *ok),
        "chaos at these rates still lets queries through"
    );
}
