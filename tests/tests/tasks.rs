//! Integration tests for the durable update-task queue: batching proof
//! at the serving layer, crash-replay convergence over the journaled
//! ledger, torn-ledger robustness, event observability through a
//! server, and back-compatibility of the deprecated synchronous write
//! shapes.

use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;

use coupling::tasks::{
    SchedulerConfig, TaskEvent, TaskExecutor, TaskFilter, TaskKind, TaskQueue, TaskStatus,
    TaskStatusKind,
};
use coupling::SharedSystem;
use oodb::Oid;
use serve::{Request, Response, Server, ServerConfig};
use system_tests::two_issue_system;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("coupling-tasks-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn para_oids(shared: &SharedSystem) -> Vec<Oid> {
    shared.read(|sys| {
        sys.query("ACCESS p FROM p IN PARA")
            .expect("paras")
            .iter()
            .map(|row| row.oid().expect("oid row"))
            .collect()
    })
}

/// Deterministic fingerprint of the searchable state: ranked results
/// for a fixed probe vocabulary. Two systems that answer identically
/// here have converged as far as the coupling is observable.
fn probe(shared: &SharedSystem) -> Vec<(String, Vec<(Oid, f64)>)> {
    const TERMS: &[&str] = &["telnet", "www", "nii", "login", "alpha", "gamma", "epsilon"];
    shared.read(|sys| {
        TERMS
            .iter()
            .map(|term| {
                let coll = sys.collection("collPara").expect("collPara");
                let (map, _) = coll.get_irs_result_with_origin(term).expect("probe query");
                let mut hits: Vec<(Oid, f64)> = map.into_iter().collect();
                hits.sort_by_key(|hit| hit.0);
                (term.to_string(), hits)
            })
            .collect()
    })
}

/// One mutation in the randomized op scripts below.
#[derive(Debug, Clone)]
enum Op {
    Update { para: usize, text: usize },
    Index,
    Flush,
}

const TEXTS: &[&str] = &[
    "alpha particles in the telnet stream",
    "gamma rays over the www backbone",
    "epsilon bounds for interactive login",
    "plain replacement paragraph",
];

fn op_kind(op: &Op, paras: &[Oid]) -> TaskKind {
    match op {
        Op::Update { para, text } => TaskKind::UpdateText {
            oid: paras[para % paras.len()],
            text: TEXTS[text % TEXTS.len()].to_string(),
            collections: vec!["collPara".into()],
        },
        Op::Index => TaskKind::IndexObjects {
            collection: "collPara".into(),
            spec_query: "ACCESS p FROM p IN PARA".into(),
        },
        Op::Flush => TaskKind::Flush {
            collection: "collPara".into(),
        },
    }
}

fn ops_strategy() -> BoxedStrategy<Vec<Op>> {
    let op = prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(p, t)| Op::Update {
            para: p as usize % 4,
            text: t as usize % TEXTS.len(),
        }),
        Just(Op::Index),
        Just(Op::Flush),
    ];
    prop::collection::vec(op.boxed(), 1..10).boxed()
}

fn executor_over(shared: &SharedSystem, queue: &TaskQueue) -> TaskExecutor {
    let config = SchedulerConfig::builder().batch_max(4).build();
    TaskExecutor::new(shared.clone(), queue.clone(), config)
}

/// Run every op to completion on a fresh system and return the probe —
/// the reference state crash-replay runs must converge to.
fn baseline(ops: &[Op]) -> Vec<(String, Vec<(Oid, f64)>)> {
    let shared = SharedSystem::new(two_issue_system());
    let paras = para_oids(&shared);
    let queue = TaskQueue::open(None, 1024, 16).expect("in-memory queue");
    for op in ops {
        queue.enqueue(op_kind(op, &paras)).expect("enqueue");
    }
    let mut executor = executor_over(&shared, &queue);
    executor.drain();
    executor.flush_propagation();
    probe(&shared)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-replay idempotence: execute an arbitrary prefix of the
    /// journaled queue, "crash" (drop queue and executor), reopen the
    /// ledger, and drain the rest. The surviving system must converge
    /// to exactly the state of an uninterrupted run, every task must
    /// reach `Succeeded`, and interrupted tasks must have reverted to
    /// the queue rather than being lost.
    #[test]
    fn crash_replay_converges(ops in ops_strategy(), cut in any::<u16>()) {
        let expected = baseline(&ops);

        let dir = tmp_dir("replay");
        let ledger = dir.join("tasks.ledger");
        let shared = SharedSystem::new(two_issue_system());
        let paras = para_oids(&shared);

        let queue = TaskQueue::open(Some(&ledger), 1024, 16).expect("journaled queue");
        for op in &ops {
            queue.enqueue(op_kind(op, &paras)).expect("enqueue");
        }
        let steps = cut as usize % (ops.len() + 1);
        let mut executor = executor_over(&shared, &queue);
        for _ in 0..steps {
            executor.step();
        }
        // Crash: the queue and executor vanish mid-drain; only the
        // ledger file and the document system survive.
        drop(executor);
        drop(queue);

        let queue = TaskQueue::open(Some(&ledger), 1024, 16).expect("reopen ledger");
        let reopened = queue.list_tasks(&TaskFilter::default());
        prop_assert_eq!(reopened.len(), ops.len(), "no task lost across the crash");
        prop_assert!(
            reopened
                .iter()
                .all(|t| t.status.kind() != TaskStatusKind::Processing),
            "interrupted tasks revert to Enqueued on replay"
        );
        let mut executor = executor_over(&shared, &queue);
        executor.drain();
        executor.flush_propagation();

        let done = queue.list_tasks(&TaskFilter::default());
        prop_assert!(
            done.iter().all(|t| t.status == TaskStatus::Succeeded),
            "every task terminal after the second drain: {done:?}"
        );
        prop_assert_eq!(probe(&shared), expected, "replayed state matches uninterrupted run");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A torn ledger tail — the file cut at an arbitrary byte — must
    /// never panic on reopen, and whatever tasks survive must still
    /// drain to terminal states.
    #[test]
    fn torn_ledger_never_panics(ops in ops_strategy(), cut in any::<u16>()) {
        let dir = tmp_dir("torn");
        let ledger = dir.join("tasks.ledger");
        let shared = SharedSystem::new(two_issue_system());
        let paras = para_oids(&shared);
        {
            let queue = TaskQueue::open(Some(&ledger), 1024, 16).expect("journaled queue");
            for op in &ops {
                queue.enqueue(op_kind(op, &paras)).expect("enqueue");
            }
            let mut executor = executor_over(&shared, &queue);
            executor.drain();
        }
        let bytes = std::fs::read(&ledger).expect("read ledger");
        let torn = &bytes[..cut as usize % (bytes.len() + 1)];
        std::fs::write(&ledger, torn).expect("write torn ledger");

        let queue = TaskQueue::open(Some(&ledger), 1024, 16).expect("torn tail truncates, not panics");
        let mut executor = executor_over(&shared, &queue);
        executor.drain();
        prop_assert!(
            queue
                .list_tasks(&TaskFilter::default())
                .iter()
                .all(|t| t.status.is_terminal()),
            "surviving tasks drain to terminal states"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The acceptance-level batching proof at the queue API: adjacent
/// identical `indexObjects` tasks claimed as one batch share one batch
/// id and count as merged executions saved.
#[test]
fn merged_tasks_share_batch_ids() {
    let shared = SharedSystem::new(two_issue_system());
    let queue = TaskQueue::open(None, 1024, 16).expect("queue");
    let kind = TaskKind::IndexObjects {
        collection: "collPara".into(),
        spec_query: "ACCESS p FROM p IN PARA".into(),
    };
    let ids: Vec<_> = (0..5)
        .map(|_| queue.enqueue(kind.clone()).expect("enqueue"))
        .collect();
    let mut executor = TaskExecutor::new(
        shared.clone(),
        queue.clone(),
        SchedulerConfig::builder().batch_max(8).build(),
    );
    assert!(executor.step(), "one step claims the whole run");
    let tasks: Vec<_> = ids
        .iter()
        .map(|id| queue.task_status(*id).expect("known"))
        .collect();
    assert!(
        tasks.iter().all(|t| t.status == TaskStatus::Succeeded),
        "all merged tasks succeeded: {tasks:?}"
    );
    let batch = tasks[0].batch_id.expect("executed tasks carry a batch id");
    assert!(
        tasks.iter().all(|t| t.batch_id == Some(batch)),
        "merged tasks share one batch id: {tasks:?}"
    );
    let stats = queue.stats();
    assert_eq!(stats.batches, 1, "one execution for five tasks");
    assert_eq!(stats.merged, 4, "four executions saved by merging");
}

/// Task lifecycle events are observable through a running server: an
/// enqueued write surfaces Enqueued → Started/Batched → Finished on a
/// subscription opened before the write.
#[test]
fn server_emits_task_events() {
    let server = Server::start(two_issue_system(), ServerConfig::default().read_workers(2));
    let events = server.tasks().expect("writable server").subscribe();
    let resp = server
        .call(Request::EnqueueTask {
            kind: TaskKind::Flush {
                collection: "collPara".into(),
            },
        })
        .expect("enqueue");
    let Response::TaskAccepted(id) = resp else {
        panic!("wrong response variant");
    };
    let mut seen = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        if let Some(event) = events.recv_timeout(Duration::from_millis(100)) {
            let finished = matches!(&event, TaskEvent::Finished { id: fid, .. } if *fid == id);
            seen.push(event);
            if finished {
                break;
            }
        }
    }
    assert!(
        seen.contains(&TaskEvent::Enqueued(id)),
        "enqueue observed: {seen:?}"
    );
    assert!(
        seen.contains(&TaskEvent::Started(id)),
        "start observed: {seen:?}"
    );
    assert!(
        seen.iter()
            .any(|e| matches!(e, TaskEvent::Finished { id: fid, ok: true } if *fid == id)),
        "successful finish observed: {seen:?}"
    );
    server.shutdown();
}

/// A journaled server remembers its tasks across a restart: the ledger
/// under `journal_dir` reloads with the terminal statuses intact.
#[test]
fn server_ledger_survives_restart() {
    let dir = tmp_dir("restart");
    let config = || {
        ServerConfig::builder()
            .read_workers(2)
            .journal_dir(&dir)
            .build()
    };
    let id = {
        let server = Server::start(two_issue_system(), config());
        let Response::TaskAccepted(id) = server
            .call(Request::EnqueueTask {
                kind: TaskKind::IndexObjects {
                    collection: "collPara".into(),
                    spec_query: "ACCESS p FROM p IN PARA".into(),
                },
            })
            .expect("enqueue")
        else {
            panic!("wrong response variant");
        };
        server.shutdown();
        id
    };
    let server = Server::start(two_issue_system(), config());
    let resp = server
        .call(Request::TaskStatus { id })
        .expect("restarted server still knows the task");
    let Response::TaskInfo(task) = resp else {
        panic!("wrong response variant");
    };
    assert_eq!(
        task.status,
        TaskStatus::Succeeded,
        "shutdown drained the task before the restart"
    );
    let resp = server
        .call(Request::ListTasks {
            filter: TaskFilter {
                status: Some(TaskStatusKind::Succeeded),
                collection: Some("collPara".into()),
            },
        })
        .expect("list");
    let Response::TaskList(list) = resp else {
        panic!("wrong response variant");
    };
    assert!(list.iter().any(|t| t.id == id), "filtered listing finds it");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a journaled scheduler must create the `collections/`
/// journal subdirectory itself. The first UpdateText against a fresh
/// `journal_dir` used to fail with ENOENT because only the directory
/// root existed when the propagator opened its journal.
#[test]
fn journaled_update_creates_collections_dir() {
    let dir = tmp_dir("propagation-dir");
    let server = Server::start(
        two_issue_system(),
        ServerConfig::builder()
            .read_workers(2)
            .journal_dir(&dir)
            .build(),
    );
    let shared = server.system().clone();
    let para = para_oids(&shared)[0];
    let Response::TaskAccepted(id) = server
        .call(Request::EnqueueTask {
            kind: TaskKind::UpdateText {
                oid: para,
                text: "obsidian shards in the journal".into(),
                collections: vec!["collPara".into()],
            },
        })
        .expect("enqueue")
    else {
        panic!("wrong response variant");
    };
    let queue = server.tasks().expect("writable server");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let task = queue.task_status(id).expect("known task");
        if task.status.is_terminal() {
            assert_eq!(
                task.status,
                TaskStatus::Succeeded,
                "journaled update succeeds on a fresh journal_dir"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "task did not finish in time"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    server.shutdown();
    assert!(
        dir.join("collections").join("collPara.journal").exists(),
        "propagation journal written under the auto-created subdirectory"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The deprecated synchronous write shapes still work end to end: they
/// ride the task queue but block until execution and answer with the
/// legacy response variants.
#[test]
#[allow(deprecated)]
fn deprecated_write_shapes_still_block_and_answer() {
    let server = Server::start(two_issue_system(), ServerConfig::default().read_workers(2));
    let shared = server.system().clone();
    let para = para_oids(&shared)[0];
    let resp = server
        .call(Request::UpdateText {
            oid: para,
            text: "quartz crystals resonate".into(),
            collections: vec!["collPara".into()],
        })
        .expect("legacy update");
    assert_eq!(resp, Response::Updated { collections: 1 });
    let resp = server
        .call(Request::IndexObjects {
            collection: "collPara".into(),
            spec_query: "ACCESS p FROM p IN PARA".into(),
        })
        .expect("legacy index");
    assert!(matches!(resp, Response::Indexed { objects } if objects == 4));
    // Blocking semantics: the update is visible immediately after the
    // call returns, with no explicit wait.
    let resp = server
        .call(Request::IrsQuery {
            collection: "collPara".into(),
            query: "quartz".into(),
        })
        .expect("query");
    let Response::IrsResult { hits, .. } = resp else {
        panic!("wrong response variant");
    };
    assert_eq!(hits.len(), 1, "legacy write visible synchronously");
    let snapshot = server.shutdown();
    assert_eq!(snapshot.tasks_failed, 0);
    assert!(snapshot.tasks_succeeded >= 2, "both writes became tasks");
}
