//! Codec robustness: the wire protocol must never panic or hang on
//! hostile bytes, and encode/decode must be an exact round trip for
//! every protocol shape. Framing-level edge cases (truncation across
//! syscall boundaries, CRC corruption, over-cap lengths) are covered
//! here against the public API; `serve::wire` has unit tests for the
//! header fields themselves.

use proptest::prelude::*;

use coupling::tasks::{Task, TaskFilter, TaskKind, TaskStatus, TaskStatusKind};
use coupling::{MixedStrategy, ResultOrigin};
use oodb::Oid;
use serve::wire::{
    decode_fault, decode_request, decode_response, encode_request, encode_response, read_frame,
    write_frame, Frame, FrameKind, WireError, MAX_FRAME_LEN,
};
use serve::{Request, Response};

/// A reader that hands out one byte per `read` call: every multi-byte
/// field crosses a syscall boundary.
struct OneByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl std::io::Read for OneByteReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.bytes.len() || buf.is_empty() {
            return Ok(0);
        }
        buf[0] = self.bytes[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

#[test]
fn frames_survive_single_byte_reads() {
    let req = Request::IrsQuery {
        collection: "collPara".into(),
        query: "#and(telnet www)".into(),
    };
    let mut buf = Vec::new();
    write_frame(&mut buf, FrameKind::Request, &encode_request(&req)).unwrap();
    let mut r = OneByteReader {
        bytes: &buf,
        pos: 0,
    };
    let frame = read_frame(&mut r).unwrap().expect("one frame");
    assert_eq!(frame.kind, FrameKind::Request);
    assert_eq!(decode_request(&frame.payload).unwrap(), req);
    assert!(read_frame(&mut r).unwrap().is_none(), "then a clean close");
}

#[test]
fn every_truncation_point_fails_cleanly() {
    let req = Request::EnqueueTask {
        kind: TaskKind::UpdateText {
            oid: Oid(9),
            text: "replacement text".into(),
            collections: vec!["collPara".into(), "collDoc".into()],
        },
    };
    let mut buf = Vec::new();
    write_frame(&mut buf, FrameKind::Request, &encode_request(&req)).unwrap();
    for cut in 1..buf.len() {
        match read_frame(&mut &buf[..cut]) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}")
            }
            other => panic!("cut at {cut}: expected UnexpectedEof, got {other:?}"),
        }
    }
}

#[test]
fn oversize_frames_are_refused_on_both_sides() {
    // Writing a payload over the cap is refused locally…
    let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
    let mut sink = Vec::new();
    assert!(matches!(
        write_frame(&mut sink, FrameKind::Request, &huge),
        Err(WireError::Oversize(_))
    ));
    // …and a forged over-cap header is refused before the payload, so
    // a hostile peer cannot make us allocate gigabytes.
    let mut buf = Vec::new();
    write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
    buf[6..10].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    assert!(matches!(
        read_frame(&mut buf.as_slice()),
        Err(WireError::Oversize(_))
    ));
}

fn strategy_strategy() -> BoxedStrategy<MixedStrategy> {
    prop_oneof![
        Just(MixedStrategy::Independent),
        Just(MixedStrategy::IrsFirst)
    ]
    .boxed()
}

fn origin_strategy() -> BoxedStrategy<ResultOrigin> {
    prop_oneof![
        Just(ResultOrigin::Fresh),
        Just(ResultOrigin::Buffered),
        Just(ResultOrigin::Stale)
    ]
    .boxed()
}

fn task_kind_strategy() -> BoxedStrategy<TaskKind> {
    let name = || "\\PC{0,20}";
    prop_oneof![
        (name(), name()).prop_map(|(collection, spec_query)| TaskKind::IndexObjects {
            collection,
            spec_query,
        }),
        (
            any::<u64>(),
            "\\PC{0,40}",
            prop::collection::vec("\\PC{0,12}".boxed(), 0..4)
        )
            .prop_map(|(oid, text, collections)| TaskKind::UpdateText {
                oid: Oid(oid),
                text,
                collections,
            }),
        name().prop_map(|collection| TaskKind::Flush { collection }),
    ]
    .boxed()
}

fn task_strategy() -> BoxedStrategy<Task> {
    let status = prop_oneof![
        Just(TaskStatus::Enqueued),
        Just(TaskStatus::Processing),
        Just(TaskStatus::Succeeded),
        "\\PC{0,30}".prop_map(|error| TaskStatus::Failed { error }),
    ];
    (
        any::<u64>(),
        task_kind_strategy(),
        status,
        any::<u64>(),
        (any::<bool>(), any::<u64>()),
    )
        .prop_map(|(id, kind, status, enqueued_at, (batched, batch))| Task {
            id,
            kind,
            status,
            enqueued_at,
            batch_id: batched.then_some(batch),
        })
        .boxed()
}

fn task_filter_strategy() -> BoxedStrategy<TaskFilter> {
    let status = prop_oneof![
        Just(TaskStatusKind::Enqueued),
        Just(TaskStatusKind::Processing),
        Just(TaskStatusKind::Succeeded),
        Just(TaskStatusKind::Failed),
    ];
    ((any::<bool>(), status), (any::<bool>(), "\\PC{0,20}"))
        .prop_map(|((by_status, status), (by_coll, collection))| TaskFilter {
            status: by_status.then_some(status),
            collection: by_coll.then_some(collection),
        })
        .boxed()
}

// The deprecated synchronous write shapes stay in the strategy pool on
// purpose: old clients still emit them, so the codec must keep
// round-tripping them until the wire kinds are retired.
#[allow(deprecated)]
fn request_strategy() -> BoxedStrategy<Request> {
    let name = || "\\PC{0,20}";
    prop_oneof![
        (name(), name()).prop_map(|(collection, query)| Request::IrsQuery { collection, query }),
        (name(), name(), name(), 0.0..1.0f64, strategy_strategy()).prop_map(
            |(collection, class, irs_query, threshold, strategy)| Request::MixedQuery {
                collection,
                class,
                irs_query,
                threshold,
                strategy,
            }
        ),
        (name(), name(), any::<u64>()).prop_map(|(collection, query, oid)| {
            Request::GetIrsValue {
                collection,
                query,
                oid: Oid(oid),
            }
        }),
        (
            any::<u64>(),
            "\\PC{0,40}",
            prop::collection::vec("\\PC{0,12}".boxed(), 0..4)
        )
            .prop_map(|(oid, text, collections)| Request::UpdateText {
                oid: Oid(oid),
                text,
                collections,
            }),
        (name(), name()).prop_map(|(collection, spec_query)| Request::IndexObjects {
            collection,
            spec_query,
        }),
        task_kind_strategy().prop_map(|kind| Request::EnqueueTask { kind }),
        any::<u64>().prop_map(|id| Request::TaskStatus { id }),
        task_filter_strategy().prop_map(|filter| Request::ListTasks { filter }),
    ]
    .boxed()
}

fn response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        (
            prop::collection::vec((any::<u64>(), 0.0..1.0f64).boxed(), 0..8),
            origin_strategy()
        )
            .prop_map(|(raw, origin)| Response::IrsResult {
                hits: raw.into_iter().map(|(o, v)| (Oid(o), v)).collect(),
                origin,
            }),
        (
            prop::collection::vec(any::<u64>().boxed(), 0..8),
            strategy_strategy(),
            origin_strategy()
        )
            .prop_map(|(oids, strategy, origin)| Response::Mixed {
                oids: oids.into_iter().map(Oid).collect(),
                strategy,
                origin,
            }),
        (0.0..1.0f64).prop_map(Response::Value),
        (0u64..1000).prop_map(|n| Response::Updated {
            collections: n as usize
        }),
        (0u64..1000).prop_map(|n| Response::Indexed {
            objects: n as usize
        }),
        any::<u64>().prop_map(Response::TaskAccepted),
        task_strategy().prop_map(Response::TaskInfo),
        prop::collection::vec(task_strategy(), 0..4).prop_map(Response::TaskList),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Requests round-trip bit-exactly through codec and framing.
    #[test]
    fn request_roundtrip(req in request_strategy()) {
        let payload = encode_request(&req);
        prop_assert_eq!(decode_request(&payload).unwrap(), req.clone());
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, &payload).unwrap();
        let Frame { kind, payload: read_back } =
            read_frame(&mut buf.as_slice()).unwrap().expect("one frame");
        prop_assert_eq!(kind, FrameKind::Request);
        prop_assert_eq!(decode_request(&read_back).unwrap(), req);
    }

    /// Responses round-trip bit-exactly through codec and framing.
    #[test]
    fn response_roundtrip(resp in response_strategy()) {
        let payload = encode_response(&resp);
        prop_assert_eq!(decode_response(&payload).unwrap(), resp.clone());
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Response, &payload).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap().expect("one frame");
        prop_assert_eq!(decode_response(&frame.payload).unwrap(), resp);
    }

    /// Arbitrary bytes never panic any decoder — they decode or they
    /// fail with a typed error.
    #[test]
    fn hostile_payloads_never_panic(bytes in prop::collection::vec(any::<u8>().boxed(), 0..64)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = decode_fault(&bytes);
        let _ = read_frame(&mut bytes.as_slice());
    }

    /// Flipping any single byte of a framed request is always detected
    /// (magic, version, kind, length, CRC, or payload corruption) —
    /// the frame layer never silently hands back different bytes.
    #[test]
    fn single_byte_corruption_is_detected(
        flip_pos in any::<u16>(),
        flip_bits in 1u8..=255,
    ) {
        let req = Request::IrsQuery {
            collection: "collPara".into(),
            query: "telnet".into(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, &encode_request(&req)).unwrap();
        let pos = flip_pos as usize % buf.len();
        buf[pos] ^= flip_bits;
        match read_frame(&mut buf.as_slice()) {
            Err(_) => {}
            Ok(None) => {}
            Ok(Some(frame)) => {
                // The only headers field corruption can leave readable is
                // the kind byte; payload bytes are CRC-protected.
                prop_assert_eq!(pos, 5, "only a kind flip may still read");
                prop_assert_eq!(frame.payload, encode_request(&req));
            }
        }
    }
}
