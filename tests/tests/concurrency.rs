//! Multi-user access: the paper's requirement (2) includes "managing
//! structured data in multi-user environments". Queries take `&self`;
//! the coupling's collection state (buffers) sits behind an `RwLock`, so
//! concurrent readers are safe — these tests exercise that under real
//! threads.

use std::sync::atomic::{AtomicUsize, Ordering};

use coupling::{CollectionSetup, DocumentSystem};
use sgml::gen::topic_term;
use sgml::{CorpusConfig, CorpusGenerator};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn system_is_send_and_sync() {
    assert_send_sync::<DocumentSystem>();
    assert_send_sync::<oodb::Database>();
    assert_send_sync::<irs::IrsCollection>();
    assert_send_sync::<coupling::Collection>();
}

fn corpus_system() -> DocumentSystem {
    let mut generator = CorpusGenerator::new(CorpusConfig {
        docs: 12,
        topics: 6,
        vocabulary: 400,
        ..CorpusConfig::default()
    });
    let mut sys = DocumentSystem::new();
    for doc in generator.generate_corpus() {
        sys.load_generated(&doc).unwrap();
    }
    sys.create_collection("coll", CollectionSetup::default()).unwrap();
    sys.index_collection("coll", "ACCESS p FROM p IN PARA").unwrap();
    sys
}

#[test]
fn concurrent_mixed_queries_agree_with_serial_execution() {
    let sys = corpus_system();

    // Serial baseline.
    let serial: Vec<usize> = (0..6)
        .map(|t| {
            sys.query(&format!(
                "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(coll, '{}') > 0.45",
                topic_term(t)
            ))
            .unwrap()
            .len()
        })
        .collect();

    // Concurrent: 6 threads, each hammering one topic query 10 times.
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (t, &expected) in serial.iter().enumerate() {
            let sys = &sys;
            let failures = &failures;
            scope.spawn(move || {
                for _ in 0..10 {
                    let got = sys
                        .query(&format!(
                            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(coll, '{}') > 0.45",
                            topic_term(t)
                        ))
                        .unwrap()
                        .len();
                    if got != expected {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(failures.load(Ordering::Relaxed), 0);

    // The buffer served the repeats: at most one IRS call per topic.
    let calls = sys.with_collection("coll", |c| c.stats().irs_calls).unwrap();
    assert!(calls <= 6 + 6, "60 probes per topic collapse to ~1 IRS call each, got {calls}");
}

#[test]
fn concurrent_reads_on_different_collections_do_not_interfere() {
    let mut sys = corpus_system();
    sys.create_collection("collDoc", CollectionSetup::default()).unwrap();
    sys.index_collection("collDoc", "ACCESS d FROM d IN MMFDOC").unwrap();
    let sys = &sys;

    std::thread::scope(|scope| {
        let a = scope.spawn(move || {
            (0..20)
                .map(|i| {
                    sys.with_collection("coll", |c| {
                        c.get_irs_result(&topic_term(i % 6)).unwrap().len()
                    })
                    .unwrap()
                })
                .sum::<usize>()
        });
        let b = scope.spawn(move || {
            (0..20)
                .map(|i| {
                    sys.with_collection("collDoc", |c| {
                        c.get_irs_result(&topic_term(i % 6)).unwrap().len()
                    })
                    .unwrap()
                })
                .sum::<usize>()
        });
        assert!(a.join().unwrap() > 0);
        assert!(b.join().unwrap() > 0);
    });
}
