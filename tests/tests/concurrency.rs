//! Multi-user access: the paper's requirement (2) includes "managing
//! structured data in multi-user environments". Queries take `&self` —
//! the IRS index is sharded behind per-shard `RwLock`s and the result
//! buffer uses interior mutability — so many threads evaluate against
//! ONE shared collection without a global write lock. These tests
//! exercise that under real threads.

use std::sync::atomic::{AtomicUsize, Ordering};

use coupling::{CollectionSetup, DocumentSystem};
use sgml::gen::topic_term;
use sgml::{CorpusConfig, CorpusGenerator};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn system_is_send_and_sync() {
    assert_send_sync::<DocumentSystem>();
    assert_send_sync::<oodb::Database>();
    assert_send_sync::<irs::IrsCollection>();
    assert_send_sync::<coupling::Collection>();
}

fn corpus_system() -> DocumentSystem {
    let mut generator = CorpusGenerator::new(CorpusConfig {
        docs: 12,
        topics: 6,
        vocabulary: 400,
        ..CorpusConfig::default()
    });
    let mut sys = DocumentSystem::new();
    for doc in generator.generate_corpus() {
        sys.load_generated(&doc).unwrap();
    }
    sys.create_collection("coll", CollectionSetup::default())
        .unwrap();
    sys.index_collection("coll", "ACCESS p FROM p IN PARA")
        .unwrap();
    sys
}

#[test]
fn concurrent_mixed_queries_agree_with_serial_execution() {
    let sys = corpus_system();

    // Serial baseline.
    let serial: Vec<usize> = (0..6)
        .map(|t| {
            sys.query(&format!(
                "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(coll, '{}') > 0.45",
                topic_term(t)
            ))
            .unwrap()
            .len()
        })
        .collect();

    // Concurrent: 6 threads, each hammering one topic query 10 times.
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (t, &expected) in serial.iter().enumerate() {
            let sys = &sys;
            let failures = &failures;
            scope.spawn(move || {
                for _ in 0..10 {
                    let got = sys
                        .query(&format!(
                            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(coll, '{}') > 0.45",
                            topic_term(t)
                        ))
                        .unwrap()
                        .len();
                    if got != expected {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(failures.load(Ordering::Relaxed), 0);

    // The buffer served the repeats: at most one IRS call per topic.
    let calls = sys.collection("coll").unwrap().stats().irs_calls;
    assert!(
        calls <= 6 + 6,
        "60 probes per topic collapse to ~1 IRS call each, got {calls}"
    );
}

#[test]
fn eight_threads_share_one_collection_through_shared_refs() {
    let sys = corpus_system();

    // Serial baseline, computed through the same read-only access path.
    let handle = sys.collection("coll").unwrap();
    let coll = &*handle;
    let baseline: Vec<usize> = (0..6)
        .map(|t| coll.evaluate_uncached(&topic_term(t)).unwrap().len())
        .collect();

    // 8 threads hold the SAME `&Collection` concurrently; each round
    // alternates between raw sharded-index evaluation and the buffered
    // getIRSResult path. No thread takes a write lock anywhere.
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..8 {
            let failures = &failures;
            let baseline = &baseline;
            scope.spawn(move || {
                for round in 0..6 {
                    let t = (i + round) % 6;
                    let got = if round % 2 == 0 {
                        coll.evaluate_uncached(&topic_term(t)).unwrap().len()
                    } else {
                        coll.get_irs_result(&topic_term(t)).unwrap().len()
                    };
                    if got != baseline[t] {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "every thread saw the serial results"
    );

    // The shared buffer absorbed the repeated getIRSResult probes.
    let stats = handle.buffer_stats();
    assert!(stats.hits > 0, "concurrent probes hit the shared buffer");
}

#[test]
fn batched_indexing_matches_serial_under_concurrent_readers() {
    use irs::{CollectionConfig, IrsCollection};

    let docs: Vec<(String, String)> = (0..64)
        .map(|i| {
            (
                format!("doc{i:03}"),
                format!(
                    "shared corpus text about {} and retrieval",
                    topic_term(i % 6)
                ),
            )
        })
        .collect();

    let mut serial = IrsCollection::new(CollectionConfig::default());
    for (key, text) in &docs {
        serial.add_document(key, text).unwrap();
    }
    let mut batched = IrsCollection::new(CollectionConfig::default());
    batched.add_documents(&docs).unwrap();

    // Identical result sets for every topic, probed from 4 reader
    // threads sharing both collections.
    let serial = &serial;
    let batched = &batched;
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                let q = topic_term(t);
                let a: Vec<_> = serial.search(&q).unwrap();
                let b: Vec<_> = batched.search(&q).unwrap();
                assert_eq!(a.len(), b.len(), "same hit count for {q}");
            });
        }
    });
}

#[test]
fn concurrent_reads_on_different_collections_do_not_interfere() {
    let mut sys = corpus_system();
    sys.create_collection("collDoc", CollectionSetup::default())
        .unwrap();
    sys.index_collection("collDoc", "ACCESS d FROM d IN MMFDOC")
        .unwrap();
    let sys = &sys;

    std::thread::scope(|scope| {
        let a = scope.spawn(move || {
            (0..20)
                .map(|i| {
                    sys.collection("coll")
                        .unwrap()
                        .get_irs_result(&topic_term(i % 6))
                        .unwrap()
                        .len()
                })
                .sum::<usize>()
        });
        let b = scope.spawn(move || {
            (0..20)
                .map(|i| {
                    sys.collection("collDoc")
                        .unwrap()
                        .get_irs_result(&topic_term(i % 6))
                        .unwrap()
                        .len()
                })
                .sum::<usize>()
        });
        assert!(a.join().unwrap() > 0);
        assert!(b.join().unwrap() > 0);
    });
}
