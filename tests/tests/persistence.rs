//! Cross-crate persistence integration: durable OODBMS (WAL + snapshot),
//! saved IRS collections, and the persistent result buffer together
//! survive a full restart.

use std::path::PathBuf;

use coupling::ResultBuffer;
use irs::persist::{load_collection, save_collection};
use irs::{CollectionConfig, IrsCollection};
use oodb::{Database, Value};
use sgml::{load_document, parse_document};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coupling-integration").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn database_and_irs_index_survive_restart() {
    let dir = tmp_dir("restart");
    let idx_path = dir.join("para.idx");
    let root_oid;
    {
        let mut db = Database::open(&dir).unwrap();
        db.define_class("IRSObject", None).unwrap();
        let tree = parse_document(
            "<MMFDOC><PARA>telnet is a protocol</PARA><PARA>the www grows</PARA></MMFDOC>",
        )
        .unwrap();
        let mut txn = db.begin();
        let loaded = load_document(&mut db, &mut txn, &tree, "IRSObject").unwrap();
        db.commit(txn).unwrap();
        root_oid = loaded.root;

        // Index paragraphs in a stand-alone IRS collection and save it.
        let mut coll = IrsCollection::new(CollectionConfig::default());
        for (_, oid) in &loaded.elements[1..] {
            let text = db.get_attr(*oid, "text").unwrap();
            if let Value::Str(t) = text {
                coll.add_document(&oid.to_string(), &t).unwrap();
            }
        }
        save_collection(&coll, &idx_path).unwrap();
        db.checkpoint().unwrap();
    }
    {
        // Restart: everything comes back from disk.
        let db = Database::open(&dir).unwrap();
        assert!(db.store().contains(root_oid));
        assert_eq!(
            db.extent(db.schema().class_id("PARA").unwrap(), false)
                .len(),
            2
        );

        let coll = load_collection(&idx_path).unwrap();
        let hits = coll.search("telnet").unwrap();
        assert_eq!(hits.len(), 1);
        // The IRS hit maps back to a live database object.
        let oid = oodb::Oid::parse(&hits[0].key).unwrap();
        assert!(db.store().contains(oid));
        assert!(db
            .get_attr(oid, "text")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("telnet"));
    }
}

/// Rebuild, live, the exact collection the pinned snapshot fixtures were
/// generated from (see `generate_pinned_fixtures` in `irs::persist`).
fn pinned_fixture_collection() -> IrsCollection {
    let mut c = IrsCollection::new(CollectionConfig {
        model: irs::ModelKind::Bm25(irs::Bm25Model { k1: 1.6, b: 0.68 }),
        shards: 2,
        ..CollectionConfig::default()
    });
    let docs = [
        (
            "doc:alpha",
            "zebra protocol handshake zebra zebra retry window",
        ),
        ("doc:beta", "protocol window sizing and flow control notes"),
        (
            "doc:gamma",
            "zebra grazing habits on the open savannah plains",
        ),
        ("doc:delta", "window manager focus protocol quirks zebra"),
        ("doc:epsilon", "flow of information retrieval beliefs"),
        ("doc:zeta", "handshake retry backoff and protocol timers"),
    ];
    for (k, t) in docs {
        c.add_document(k, t).unwrap();
    }
    c.delete_document("doc:gamma").unwrap();
    c
}

/// Every query the fixture suite exercises: plain terms, operators, and
/// a term that only the deleted document contained.
const FIXTURE_QUERIES: &[&str] = &[
    "zebra",
    "protocol",
    "window",
    "handshake",
    "grazing",
    "savannah",
    "#and(protocol window)",
    "#or(zebra retry)",
    "#wsum(2 protocol 1 zebra)",
];

/// A snapshot written by a historical build (pinned in the repo, never
/// regenerated) must keep loading into today's block-structured index
/// with bit-identical search results. `snapshot-flat-v2.idx` is the flat
/// single-file format; `snapshot-shard-v1.idx` is a per-shard directory
/// written before shard files carried block metadata (shard version 1);
/// `snapshot-shard-v2.idx` pins the current per-shard format with
/// persisted block headers.
#[test]
fn pinned_snapshots_load_into_block_structured_index() {
    let live = pinned_fixture_collection();
    for fixture in [
        "snapshot-flat-v2.idx",
        "snapshot-shard-v1.idx",
        "snapshot-shard-v2.idx",
    ] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(fixture);
        let loaded = load_collection(&path).unwrap_or_else(|e| panic!("{fixture}: {e}"));
        assert_eq!(loaded.len(), live.len(), "{fixture}: live doc count");
        assert!(!loaded.contains("doc:gamma"), "{fixture}: tombstone kept");
        assert_eq!(loaded.config(), live.config(), "{fixture}: config");
        for q in FIXTURE_QUERIES {
            let a = live.search(q).unwrap();
            let b = loaded.search(q).unwrap();
            assert_eq!(a, b, "{fixture}: query {q}");
        }
        // The migrated index must carry real block structure: top-k with
        // block-max pruning over the loaded index matches the live one.
        for q in FIXTURE_QUERIES {
            let a = live.search_top_k(q, 3).unwrap();
            let b = loaded.search_top_k(q, 3).unwrap();
            assert_eq!(a, b, "{fixture}: top-k query {q}");
        }
    }
}

#[test]
fn result_buffer_persists_between_sessions() {
    let dir = tmp_dir("buffer");
    let buf_path = dir.join("results.buf");
    {
        let sys = system_tests::two_issue_system();
        // Populate and persist the buffer.
        {
            let coll = sys.collection("collPara").unwrap();
            coll.get_irs_result("telnet").unwrap();
            coll.get_irs_result("#and(www nii)").unwrap();
        }
        // Persist through the buffer type directly (the paper buffers
        // "persistently in a dictionary").
        let buffer = ResultBuffer::new(16);
        let telnet = sys
            .collection("collPara")
            .unwrap()
            .get_irs_result("telnet")
            .unwrap();
        buffer.insert("telnet", telnet);
        buffer.save(&buf_path).unwrap();
    }
    {
        let buffer = ResultBuffer::load(&buf_path, 16).unwrap();
        let hit = buffer.get("telnet").expect("persisted entry");
        assert_eq!(hit.len(), 2, "both telnet paragraphs persisted");
        for v in hit.values() {
            assert!((0.0..=1.0).contains(v));
        }
    }
}

#[test]
fn wal_recovery_after_simulated_crash() {
    let dir = tmp_dir("crash");
    let oid;
    {
        let mut db = Database::open(&dir).unwrap();
        db.define_class("PARA", None).unwrap();
        let class = db.schema().class_id("PARA").unwrap();
        let mut txn = db.begin();
        oid = db.create_object(&mut txn, class).unwrap();
        db.set_attr(&mut txn, oid, "text", Value::from("committed before crash"))
            .unwrap();
        db.commit(txn).unwrap();
        // No checkpoint — recovery must replay the WAL.
        // An uncommitted transaction must vanish.
        let mut t2 = db.begin();
        let ghost = db.create_object(&mut t2, class).unwrap();
        db.set_attr(&mut t2, ghost, "text", Value::from("never committed"))
            .unwrap();
        // Dropped without commit: simulates the crash cutting off the txn.
        drop(t2);
    }
    {
        let db = Database::open(&dir).unwrap();
        assert_eq!(
            db.get_attr(oid, "text").unwrap(),
            Value::from("committed before crash")
        );
        assert_eq!(db.store().len(), 1, "uncommitted object not recovered");
    }
}
