//! Cross-crate persistence integration: durable OODBMS (WAL + snapshot),
//! saved IRS collections, and the persistent result buffer together
//! survive a full restart.

use std::path::PathBuf;

use coupling::ResultBuffer;
use irs::persist::{load_collection, save_collection};
use irs::{CollectionConfig, IrsCollection};
use oodb::{Database, Value};
use sgml::{load_document, parse_document};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coupling-integration").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn database_and_irs_index_survive_restart() {
    let dir = tmp_dir("restart");
    let idx_path = dir.join("para.idx");
    let root_oid;
    {
        let mut db = Database::open(&dir).unwrap();
        db.define_class("IRSObject", None).unwrap();
        let tree = parse_document(
            "<MMFDOC><PARA>telnet is a protocol</PARA><PARA>the www grows</PARA></MMFDOC>",
        )
        .unwrap();
        let mut txn = db.begin();
        let loaded = load_document(&mut db, &mut txn, &tree, "IRSObject").unwrap();
        db.commit(txn).unwrap();
        root_oid = loaded.root;

        // Index paragraphs in a stand-alone IRS collection and save it.
        let mut coll = IrsCollection::new(CollectionConfig::default());
        for (_, oid) in &loaded.elements[1..] {
            let text = db.get_attr(*oid, "text").unwrap();
            if let Value::Str(t) = text {
                coll.add_document(&oid.to_string(), &t).unwrap();
            }
        }
        save_collection(&coll, &idx_path).unwrap();
        db.checkpoint().unwrap();
    }
    {
        // Restart: everything comes back from disk.
        let db = Database::open(&dir).unwrap();
        assert!(db.store().contains(root_oid));
        assert_eq!(
            db.extent(db.schema().class_id("PARA").unwrap(), false)
                .len(),
            2
        );

        let coll = load_collection(&idx_path).unwrap();
        let hits = coll.search("telnet").unwrap();
        assert_eq!(hits.len(), 1);
        // The IRS hit maps back to a live database object.
        let oid = oodb::Oid::parse(&hits[0].key).unwrap();
        assert!(db.store().contains(oid));
        assert!(db
            .get_attr(oid, "text")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("telnet"));
    }
}

#[test]
fn result_buffer_persists_between_sessions() {
    let dir = tmp_dir("buffer");
    let buf_path = dir.join("results.buf");
    {
        let sys = system_tests::two_issue_system();
        // Populate and persist the buffer.
        {
            let coll = sys.collection("collPara").unwrap();
            coll.get_irs_result("telnet").unwrap();
            coll.get_irs_result("#and(www nii)").unwrap();
        }
        // Persist through the buffer type directly (the paper buffers
        // "persistently in a dictionary").
        let buffer = ResultBuffer::new(16);
        let telnet = sys
            .collection("collPara")
            .unwrap()
            .get_irs_result("telnet")
            .unwrap();
        buffer.insert("telnet", telnet);
        buffer.save(&buf_path).unwrap();
    }
    {
        let buffer = ResultBuffer::load(&buf_path, 16).unwrap();
        let hit = buffer.get("telnet").expect("persisted entry");
        assert_eq!(hit.len(), 2, "both telnet paragraphs persisted");
        for v in hit.values() {
            assert!((0.0..=1.0).contains(v));
        }
    }
}

#[test]
fn wal_recovery_after_simulated_crash() {
    let dir = tmp_dir("crash");
    let oid;
    {
        let mut db = Database::open(&dir).unwrap();
        db.define_class("PARA", None).unwrap();
        let class = db.schema().class_id("PARA").unwrap();
        let mut txn = db.begin();
        oid = db.create_object(&mut txn, class).unwrap();
        db.set_attr(&mut txn, oid, "text", Value::from("committed before crash"))
            .unwrap();
        db.commit(txn).unwrap();
        // No checkpoint — recovery must replay the WAL.
        // An uncommitted transaction must vanish.
        let mut t2 = db.begin();
        let ghost = db.create_object(&mut t2, class).unwrap();
        db.set_attr(&mut t2, ghost, "text", Value::from("never committed"))
            .unwrap();
        // Dropped without commit: simulates the crash cutting off the txn.
        drop(t2);
    }
    {
        let db = Database::open(&dir).unwrap();
        assert_eq!(
            db.get_attr(oid, "text").unwrap(),
            Value::from("committed before crash")
        );
        assert_eq!(db.store().len(), 1, "uncommitted object not recovered");
    }
}
