//! Failure injection and fuzz tests: corrupted files and hostile inputs
//! must produce clean errors, never panics or wrong recoveries.

use proptest::prelude::*;

use irs::persist::{load_collection, save_collection, save_collection_flat};
use irs::{CollectionConfig, IrsCollection};
use oodb::store::wal::{replay, Record, WalWriter};
use oodb::{Oid, Value};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("coupling-fuzz");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn sample_index_bytes() -> Vec<u8> {
    let mut c = IrsCollection::new(CollectionConfig::default());
    c.add_document("a", "telnet is a protocol for remote login")
        .unwrap();
    c.add_document("b", "the www grows and grows").unwrap();
    c.delete_document("a").unwrap();
    let path = tmp("fuzz_base.idx");
    // The byte-flip fuzz wants one contiguous file, so use the flat format
    // (the native format is a directory; it gets its own fuzz below).
    let _ = std::fs::remove_dir_all(&path);
    save_collection_flat(&c, &path).unwrap();
    std::fs::read(&path).unwrap()
}

fn sample_wal_bytes() -> Vec<u8> {
    let path = tmp("fuzz_base.wal");
    let _ = std::fs::remove_file(&path);
    let mut w = WalWriter::open(&path).unwrap();
    w.append_batch(&[
        Record::DefineClass {
            name: "PARA".into(),
            parent: None,
        },
        Record::Create {
            oid: Oid(1),
            class: "PARA".into(),
        },
        Record::SetAttr {
            oid: Oid(1),
            attr: "text".into(),
            value: Value::from("hello world"),
        },
    ])
    .unwrap();
    w.append_batch(&[Record::Delete { oid: Oid(1) }]).unwrap();
    drop(w);
    std::fs::read(&path).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte flips in a saved index: load either fails cleanly
    /// or yields a collection that can be searched without panicking.
    #[test]
    fn index_file_corruption_never_panics(
        flips in prop::collection::vec((any::<u16>(), any::<u8>()), 1..8),
        case in 0u32..1000,
    ) {
        let mut bytes = sample_index_bytes();
        for (pos, val) in &flips {
            let idx = *pos as usize % bytes.len();
            bytes[idx] ^= *val;
        }
        let path = tmp(&format!("flip_{case}.idx"));
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(coll) = load_collection(&path) {
            // Whatever loaded must behave like a collection.
            let _ = coll.search("telnet");
            let _ = coll.len();
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Byte flips anywhere inside a native per-shard snapshot directory
    /// (manifest or shard files): load either fails cleanly or yields a
    /// collection that behaves.
    #[test]
    fn native_snapshot_corruption_never_panics(
        flips in prop::collection::vec((any::<u16>(), any::<u8>()), 1..8),
        case in 0u32..1000,
    ) {
        let dir = tmp(&format!("native_{case}.idx"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = IrsCollection::new(CollectionConfig::default());
        c.add_document("a", "telnet is a protocol for remote login")
            .unwrap();
        c.add_document("b", "the www grows and grows").unwrap();
        save_collection(&c, &dir).unwrap();
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        for (i, (pos, val)) in flips.iter().enumerate() {
            let f = &files[i % files.len()];
            let mut bytes = std::fs::read(f).unwrap();
            let idx = *pos as usize % bytes.len();
            bytes[idx] ^= *val;
            std::fs::write(f, &bytes).unwrap();
        }
        if let Ok(coll) = load_collection(&dir) {
            let _ = coll.search("telnet");
            let _ = coll.len();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Arbitrary truncation of the WAL: replay never panics and never
    /// invents records — any successful replay is a prefix of the
    /// original record sequence.
    #[test]
    fn wal_truncation_recovers_a_prefix(cut in 0usize..200) {
        let bytes = sample_wal_bytes();
        let cut = cut.min(bytes.len());
        let path = tmp(&format!("cut_{cut}.wal"));
        std::fs::write(&path, &bytes[..cut]).unwrap();
        if let Ok(records) = replay(&path) {
            let full = {
                let path_full = tmp("full.wal");
                std::fs::write(&path_full, &bytes).unwrap();
                replay(&path_full).unwrap()
            };
            prop_assert!(records.len() <= full.len());
            prop_assert_eq!(&records[..], &full[..records.len()]);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Random byte flips in the WAL: replay errors or returns valid
    /// records; it never panics.
    #[test]
    fn wal_corruption_never_panics(
        flips in prop::collection::vec((any::<u16>(), any::<u8>()), 1..6),
        case in 0u32..1000,
    ) {
        let mut bytes = sample_wal_bytes();
        for (pos, val) in &flips {
            let idx = *pos as usize % bytes.len();
            bytes[idx] ^= *val;
        }
        let path = tmp(&format!("walflip_{case}.wal"));
        std::fs::write(&path, &bytes).unwrap();
        let _ = replay(&path);
        let _ = std::fs::remove_file(&path);
    }

    /// The IRS query parser never panics on arbitrary input.
    #[test]
    fn irs_query_parser_never_panics(input in "\\PC{0,60}") {
        let _ = irs::parse_query(&input);
    }

    /// Hostile operator soup for the IRS parser.
    #[test]
    fn irs_operator_soup_never_panics(input in "[#()a-z0-9/\" .-]{0,60}") {
        let _ = irs::parse_query(&input);
    }

    /// The VQL parser never panics on arbitrary input.
    #[test]
    fn vql_parser_never_panics(input in "\\PC{0,80}") {
        let db = oodb::Database::in_memory();
        let _ = db.query(&input);
    }

    /// VQL keyword soup.
    #[test]
    fn vql_keyword_soup_never_panics(
        input in "(ACCESS|FROM|IN|WHERE|ORDER|BY|LIMIT|AND|OR|NOT|->|[a-z]|[0-9]|'| |,|\\(|\\)){0,30}"
    ) {
        let db = oodb::Database::in_memory();
        let _ = db.query(&input);
    }

    /// The SGML document parser never panics on arbitrary input.
    #[test]
    fn sgml_parser_never_panics(input in "\\PC{0,80}") {
        let _ = sgml::parse_document(&input);
    }

    /// SGML tag soup.
    #[test]
    fn sgml_tag_soup_never_panics(input in "[<>/=\"A-Za-z0-9 !-]{0,80}") {
        let _ = sgml::parse_document(&input);
    }

    /// The DTD parser never panics on arbitrary input.
    #[test]
    fn dtd_parser_never_panics(input in "[<>!A-Z()|,*+?# a-z-]{0,80}") {
        let _ = sgml::parse_dtd(&input);
    }
}

/// Regression (fuzz seed `"ଏ"`, see `fuzz.proptest-regressions`): a
/// single multi-byte Indic character must survive every text entry point
/// — parsers, the analysis chain, and indexing — without panicking on a
/// char boundary.
#[test]
fn regression_single_oriya_char_is_handled() {
    let input = "ଏ"; // U+0B0F, 3 bytes in UTF-8
    let _ = irs::parse_query(input);
    let _ = sgml::parse_document(input);
    let _ = sgml::parse_dtd(input);
    let _ = oodb::Database::in_memory().query(input);

    let analyzer = irs::analysis::Analyzer::new(irs::analysis::AnalyzerConfig::default());
    let _ = analyzer.analyze(input);
    assert_eq!(
        analyzer.analyze_term(input),
        input,
        "non-ASCII term must not be stemmed"
    );

    let mut coll = irs::IrsCollection::new(irs::CollectionConfig::default());
    coll.add_document("seed", input)
        .expect("indexing a single Oriya char succeeds");
    let _ = coll.search(input).expect("query parses");
}

/// Regression (fuzz seed `"a㆐𐊠"`): ASCII + BMP symbol + astral-plane
/// letter in one string — token byte offsets must land on char
/// boundaries, and slicing the source by them must round-trip.
#[test]
fn regression_mixed_width_tokens_round_trip() {
    let input = "a㆐𐊠"; // 1-byte, 3-byte, 4-byte chars
    let tokens = irs::analysis::tokenize(input);
    for t in &tokens {
        assert!(input.is_char_boundary(t.start) && input.is_char_boundary(t.end));
        assert_eq!(&input[t.start..t.end], t.text, "offsets map back to source");
    }
    // U+3190 is a symbol, not alphanumeric: it separates the two tokens.
    let texts: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(texts, ["a", "𐊠"]);

    let _ = irs::parse_query(input);
    let _ = sgml::parse_document(input);
    let mut coll = irs::IrsCollection::new(irs::CollectionConfig::default());
    coll.add_document("seed", input)
        .expect("indexing mixed-width text succeeds");
}

/// Byte-level WAL property: a WAL whose tail is cut mid-frame must still
/// yield every *complete* batch (the crash-consistency contract).
#[test]
fn wal_every_batch_boundary_is_a_recovery_point() {
    let bytes = sample_wal_bytes();
    let path = tmp("boundary.wal");
    std::fs::write(&path, &bytes).unwrap();
    let full = replay(&path).unwrap();
    assert_eq!(full.len(), 4);

    // Cutting anywhere strictly inside the file loses at most the last
    // partial batch; the first batch (3 records) survives any cut beyond
    // its frame.
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match replay(&path) {
            Ok(records) => {
                assert!(records.len() == 3 || records.len() == 4 || records.is_empty());
            }
            Err(_) => panic!("truncation at {cut} must not be corrupt — it is a torn write"),
        }
    }
}
