//! Crash-recovery integration suite: every persisted file is written
//! atomically with a CRC-32 trailer, torn writes and bit flips are
//! detected at open, journaled deferred updates replay after a crash,
//! and a down IRS degrades to stale-marked answers instead of failing.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use coupling::{
    journal_path, open_system, save_system, DocumentSystem, PendingOp, PropagationStrategy,
    Propagator, ResultOrigin,
};
use irs::fault::{flip_byte, torn_write};
use irs::FaultPlan;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coupling-recovery").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A saved two-issue system under `dir`.
fn saved_system(dir: &Path) -> DocumentSystem {
    let mut sys = system_tests::two_issue_system();
    sys.collection("collPara")
        .unwrap()
        .get_irs_result("telnet")
        .unwrap();
    save_system(&mut sys, dir).unwrap();
    sys
}

/// Flip one byte in the middle of `file` (relative to `dir/collections`).
fn corrupt(dir: &Path, file: &str) {
    let path = dir.join("collections").join(file);
    let len = std::fs::metadata(&path).unwrap().len();
    flip_byte(&path, (len / 2) as usize).unwrap();
}

// ----------------------------------------------------------------------
// Bit-flip detection matrix
// ----------------------------------------------------------------------

#[test]
fn bit_flip_in_index_manifest_is_detected() {
    let dir = tmp_dir("flip_idx");
    saved_system(&dir);
    corrupt(&dir, "collPara.idx/manifest");
    assert!(open_system(&dir).is_err(), "corrupt index must not load");
}

#[test]
fn bit_flip_in_index_shard_file_is_detected() {
    let dir = tmp_dir("flip_shard");
    saved_system(&dir);
    // Flip a byte in every shard file of the per-shard snapshot; the CRC
    // framing must reject the load whichever shard carries the postings.
    let idx_dir = dir.join("collections").join("collPara.idx");
    for entry in std::fs::read_dir(&idx_dir).unwrap() {
        let path = entry.unwrap().path();
        if !path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("shard-")
        {
            continue;
        }
        let len = std::fs::metadata(&path).unwrap().len();
        flip_byte(&path, (len / 2) as usize).unwrap();
    }
    assert!(open_system(&dir).is_err(), "corrupt shard must not load");
}

#[test]
fn bit_flip_in_buffer_file_is_detected() {
    let dir = tmp_dir("flip_buf");
    saved_system(&dir);
    corrupt(&dir, "collPara.buf");
    assert!(open_system(&dir).is_err(), "corrupt buffer must not load");
}

#[test]
fn bit_flip_in_meta_file_is_detected() {
    let dir = tmp_dir("flip_meta");
    saved_system(&dir);
    corrupt(&dir, "collPara.meta");
    assert!(open_system(&dir).is_err(), "corrupt metadata must not load");
}

#[test]
fn bit_flip_in_db_snapshot_is_detected() {
    let dir = tmp_dir("flip_snap");
    saved_system(&dir);
    let snap = dir.join("db").join("snapshot.odb");
    assert!(snap.exists(), "snapshot written by save_system");
    let len = std::fs::metadata(&snap).unwrap().len();
    flip_byte(&snap, (len / 2) as usize).unwrap();
    assert!(open_system(&dir).is_err(), "corrupt snapshot must not load");
}

// ----------------------------------------------------------------------
// Torn writes (kill mid-save)
// ----------------------------------------------------------------------

#[test]
fn truncated_index_manifest_is_detected() {
    let dir = tmp_dir("torn_idx");
    saved_system(&dir);
    let path = dir
        .join("collections")
        .join("collPara.idx")
        .join("manifest");
    let bytes = std::fs::read(&path).unwrap();
    torn_write(&path, &bytes, bytes.len() * 2 / 3).unwrap();
    assert!(open_system(&dir).is_err(), "torn index must not load");
}

#[test]
fn stray_tmp_file_from_killed_save_is_harmless() {
    // Atomic saves go through `<name>.tmp` + rename; a kill between the
    // two leaves a stray .tmp next to an intact previous version.
    let dir = tmp_dir("stray_tmp");
    let sys = saved_system(&dir);
    let before = sys
        .query("ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'telnet') > 0.45")
        .unwrap();
    std::fs::write(
        dir.join("collections").join("collPara.meta.tmp"),
        b"half-written garbage",
    )
    .unwrap();
    // Likewise a stray shard tmp inside the per-shard snapshot directory.
    std::fs::write(
        dir.join("collections")
            .join("collPara.idx")
            .join("shard-9999-0.tmp"),
        b"also garbage",
    )
    .unwrap();
    let reopened = open_system(&dir).unwrap();
    let after = reopened
        .query("ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'telnet') > 0.45")
        .unwrap();
    assert_eq!(before, after, "previous consistent version still serves");
}

// ----------------------------------------------------------------------
// Journal recovery
// ----------------------------------------------------------------------

#[test]
fn journaled_updates_survive_crash_and_replay_once() {
    let dir = tmp_dir("journal_crash");
    let mut sys = saved_system(&dir);
    let para = sys.query("ACCESS p FROM p IN PARA").unwrap()[0]
        .oid()
        .unwrap();

    // Durably record a deferred modification; crash before the flush.
    let mut prop = Propagator::with_journal(
        PropagationStrategy::Deferred,
        &journal_path(&dir, "collPara"),
    )
    .unwrap();
    sys.update_text(
        para,
        "gopher menus replace telnet",
        &mut [("collPara", &mut prop)],
    )
    .unwrap();
    assert_eq!(prop.pending().len(), 1);
    drop(prop);
    drop(sys);

    // First reopen replays the journal and persists the recovered index.
    let reopened = open_system(&dir).unwrap();
    let hits = reopened
        .collection("collPara")
        .unwrap()
        .get_irs_result("gopher")
        .unwrap()
        .len();
    assert_eq!(hits, 1, "pending update applied during recovery");
    assert_eq!(
        std::fs::metadata(journal_path(&dir, "collPara"))
            .unwrap()
            .len(),
        0,
        "journal cleared after recovery was made durable"
    );
    drop(reopened);

    // Second reopen: recovered state came from the re-saved index, not a
    // second replay.
    let again = open_system(&dir).unwrap();
    let hits = again
        .collection("collPara")
        .unwrap()
        .get_irs_result("gopher")
        .unwrap()
        .len();
    assert_eq!(hits, 1, "recovery is durable across further restarts");
}

#[test]
fn torn_journal_tail_replays_consistent_prefix() {
    let dir = tmp_dir("journal_torn");
    let mut sys = saved_system(&dir);
    let paras: Vec<oodb::Oid> = sys
        .query("ACCESS p FROM p IN PARA")
        .unwrap()
        .iter()
        .filter_map(|r| r.oid())
        .collect();
    let jpath = journal_path(&dir, "collPara");
    let mut prop = Propagator::with_journal(PropagationStrategy::Deferred, &jpath).unwrap();
    sys.update_text(paras[0], "zeppelin one", &mut [("collPara", &mut prop)])
        .unwrap();
    sys.update_text(paras[1], "quagga two", &mut [("collPara", &mut prop)])
        .unwrap();
    drop(prop);
    drop(sys);

    // Tear the last frame: only the first operation survives.
    let bytes = std::fs::read(&jpath).unwrap();
    torn_write(&jpath, &bytes, bytes.len() - 5).unwrap();

    let reopened = open_system(&dir).unwrap();
    let (zeppelin, quagga) = {
        let c = reopened.collection("collPara").unwrap();
        (
            c.get_irs_result("zeppelin").unwrap().len(),
            c.get_irs_result("quagga").unwrap().len(),
        )
    };
    assert_eq!(zeppelin, 1, "intact frame replayed");
    assert_eq!(quagga, 0, "torn frame discarded, not half-applied");
}

#[test]
fn journal_compaction_preserves_pending_state() {
    let dir = tmp_dir("journal_compact");
    let mut sys = system_tests::two_issue_system();
    save_system(&mut sys, &dir).unwrap();
    let para = sys.query("ACCESS p FROM p IN PARA").unwrap()[0]
        .oid()
        .unwrap();
    let jpath = journal_path(&dir, "collPara");
    let mut prop = Propagator::with_journal(PropagationStrategy::Deferred, &jpath).unwrap();
    // Churn: many modifies of one object fold to a single pending op, and
    // the journal compacts rather than growing without bound.
    for i in 0..32 {
        sys.update_text(
            para,
            &format!("wombat text {i}"),
            &mut [("collPara", &mut prop)],
        )
        .unwrap();
    }
    assert_eq!(prop.pending(), &[PendingOp::Modify(para)]);
    let frames = prop.journal().unwrap().frames();
    assert!(
        frames <= 8,
        "journal compacted instead of holding 32 frames ({frames})"
    );
    assert!(prop.journal().unwrap().rewrites() >= 1);
    drop(prop);
    drop(sys);

    let reopened = open_system(&dir).unwrap();
    let hits = reopened
        .collection("collPara")
        .unwrap()
        .get_irs_result("wombat")
        .unwrap()
        .len();
    assert_eq!(hits, 1, "compacted journal still recovers the update");
}

// ----------------------------------------------------------------------
// Degraded-mode serving (IRS unavailable)
// ----------------------------------------------------------------------

#[test]
fn irs_outage_serves_stale_buffered_results() {
    let sys = system_tests::two_issue_system();
    let fresh = sys
        .collection("collPara")
        .unwrap()
        .get_irs_result("telnet")
        .unwrap();
    let mut c = sys.collection_mut("collPara").unwrap();
    // An update invalidates the buffer, then the IRS goes down.
    c.buffer().invalidate_all();
    let plan = Arc::new(FaultPlan::new(42));
    plan.set_down(true);
    c.inject_faults(Some(plan));
    let (map, origin) = c.get_irs_result_with_origin("telnet").unwrap();
    assert_eq!(origin, ResultOrigin::Stale, "served from the stale store");
    assert_eq!(map, fresh, "stale answer is the last consistent one");
    assert!(c.fault_stats().stale_serves >= 1);
    // Queries with no stale copy surface the transient failure.
    assert!(c.get_irs_result("www").unwrap_err().is_transient());
}

#[test]
fn recovery_after_outage_resumes_fresh_serving() {
    let sys = system_tests::two_issue_system();
    let mut c = sys.collection_mut("collPara").unwrap();
    c.get_irs_result("telnet").unwrap();
    c.buffer().invalidate_all();
    let plan = Arc::new(FaultPlan::new(7));
    plan.set_down(true);
    c.inject_faults(Some(plan.clone()));
    let (_, origin) = c.get_irs_result_with_origin("telnet").unwrap();
    assert_eq!(origin, ResultOrigin::Stale);
    // The IRS comes back; wait out the breaker cooldown.
    plan.set_down(false);
    std::thread::sleep(std::time::Duration::from_millis(60));
    let (_, origin) = c.get_irs_result_with_origin("telnet").unwrap();
    assert_eq!(origin, ResultOrigin::Fresh, "fresh serving resumes");
    assert!(c.fault_stats().retries + c.fault_stats().giveups >= 1);
}

#[test]
fn transient_error_rate_is_absorbed_by_retries() {
    let sys = system_tests::two_issue_system();
    let mut c = sys.collection_mut("collPara").unwrap();
    // 20% per-op failure; with 2 retries the effective failure rate
    // is below 1%, so a handful of queries all succeed.
    c.inject_faults(Some(Arc::new(FaultPlan::new(1234).with_error_rate(0.2))));
    for q in ["telnet", "www", "nii", "login", "hypertext"] {
        c.get_irs_result(q).unwrap();
    }
    assert!(c.fault_stats().giveups == 0, "retries absorbed all faults");
}
