//! Shard-per-node partitioning suite.
//!
//! The property that justifies the whole global-statistics exchange:
//! scatter/gather over any number of partitions returns **bit-identical**
//! results to evaluating the union index on one node — same documents,
//! same scores to the last bit, same order, for every retrieval model,
//! operator shape, partition count, and k. On top of that, the failover
//! contract: losing every replica of one partition degrades to a marked
//! stale answer or a typed transient error, never to a silent partial
//! merge; and the same behaviour holds end-to-end over TCP replicas.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use coupling::remote::RemoteConfig;
use coupling::retry::{BreakerConfig, RetryPolicy};
use coupling::{
    CouplingError, ErrorKind, PartitionConfig, PartitionedIrs, ReplicaTransport, ResultOrigin,
};
use irs::{CollectionConfig, IrsCollection, ModelKind, QueryGlobals};
use oodb::Oid;
use proptest::prelude::*;
use serve::ReplicaServer;
use system_tests::two_issue_system;

/// Same vocabulary as the top-k suite: small enough that random
/// documents collide on terms and rankings carry real score ties.
const VOCAB: [&str; 12] = [
    "telnet", "gopher", "www", "archie", "veronica", "wais", "ftp", "nii", "mosaic", "lynx",
    "usenet", "irc",
];

fn model_for(choice: u8) -> ModelKind {
    match choice % 4 {
        0 => ModelKind::Boolean,
        1 => ModelKind::Vector(Default::default()),
        2 => ModelKind::Bm25(Default::default()),
        _ => ModelKind::Inference(Default::default()),
    }
}

/// Operator shapes inside the partitionable fragment (no `#not`, phrase
/// or `#near` — those refuse to scatter, pinned separately below).
fn query_for(shape: u8, a: u8, b: u8, c: u8) -> String {
    let t = |i: u8| VOCAB[i as usize % VOCAB.len()];
    match shape % 5 {
        0 => t(a).to_string(),
        1 => format!("#or({} {})", t(a), t(b)),
        2 => format!("#sum({} {} {})", t(a), t(b), t(c)),
        3 => format!("#wsum(3 {} 1 {})", t(a), t(b)),
        _ => format!("#and({} {})", t(a), t(b)),
    }
}

/// Keys use the coupling's `oid:N` form, offset so that single- and
/// double-digit OIDs coexist: `"oid:10" < "oid:9"` lexicographically
/// while `Oid(9) < Oid(10)`, which is exactly the tie-break trap the
/// router's merge has to get right.
fn key_of(i: usize) -> String {
    format!("oid:{}", i + 5)
}

fn build(
    docs: &[Vec<u8>],
    indices: impl Iterator<Item = usize>,
    model: ModelKind,
) -> IrsCollection {
    let mut coll = IrsCollection::new(CollectionConfig {
        model,
        ..CollectionConfig::default()
    });
    for i in indices {
        let text: Vec<&str> = docs[i]
            .iter()
            .map(|&w| VOCAB[w as usize % VOCAB.len()])
            .collect();
        coll.add_document(&key_of(i), &text.join(" ")).unwrap();
    }
    coll
}

/// In-process partition shard: one `IrsCollection` behind the transport
/// trait, with a kill switch for failover tests.
struct FakeShard {
    coll: IrsCollection,
    down: AtomicBool,
}

impl FakeShard {
    fn new(coll: IrsCollection) -> Arc<Self> {
        Arc::new(FakeShard {
            coll,
            down: AtomicBool::new(false),
        })
    }

    fn check(&self) -> coupling::Result<()> {
        if self.down.load(Ordering::Relaxed) {
            return Err(CouplingError::Remote {
                kind: ErrorKind::Io,
                message: "shard down".into(),
            });
        }
        Ok(())
    }
}

/// Local newtype so the transport trait can be implemented here
/// (orphan rule: `Arc<FakeShard>` is foreign).
#[derive(Clone)]
struct Shard(Arc<FakeShard>);

impl ReplicaTransport for Shard {
    fn search(&self, _c: &str, query: &str) -> coupling::Result<(Vec<(Oid, f64)>, ResultOrigin)> {
        self.0.check()?;
        let hits = self.0.coll.search(query).map_err(CouplingError::Irs)?;
        Ok((
            hits.into_iter()
                .filter_map(|h| Oid::parse(&h.key).map(|o| (o, h.score)))
                .collect(),
            ResultOrigin::Fresh,
        ))
    }

    fn value(&self, c: &str, query: &str, oid: Oid) -> coupling::Result<f64> {
        let (hits, _) = self.search(c, query)?;
        Ok(hits
            .iter()
            .find(|(o, _)| *o == oid)
            .map(|(_, s)| *s)
            .unwrap_or(0.0))
    }

    fn ping(&self) -> coupling::Result<()> {
        self.0.check()
    }

    fn term_stats(&self, _c: &str, query: &str) -> coupling::Result<QueryGlobals> {
        self.0.check()?;
        self.0.coll.query_globals(query).map_err(CouplingError::Irs)
    }

    fn search_global(
        &self,
        _c: &str,
        query: &str,
        k: usize,
        globals: &QueryGlobals,
    ) -> coupling::Result<Vec<(String, f64)>> {
        self.0.check()?;
        let hits = self
            .0
            .coll
            .search_top_k_global(query, k, globals)
            .map_err(CouplingError::Irs)?;
        Ok(hits.into_iter().map(|h| (h.key, h.score)).collect())
    }
}

/// Fan-out tuning tight enough that a down shard fails within the test
/// budget instead of sitting out full production backoffs.
fn tight_config() -> PartitionConfig {
    PartitionConfig {
        remote: RemoteConfig {
            hedge_delay: Duration::from_millis(30),
            attempt_timeout: Duration::from_millis(300),
            max_attempts: 2,
            retry: RetryPolicy {
                max_retries: 1,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                call_budget: Duration::from_millis(200),
                jitter_seed: 0x5eed,
            },
            breaker: BreakerConfig {
                failure_threshold: 100,
                cooldown: Duration::from_millis(50),
            },
            stale_capacity: 16,
        },
        stale_capacity: None,
    }
}

/// One single-replica group per shard.
fn router(shards: Vec<Arc<FakeShard>>) -> PartitionedIrs<Shard> {
    PartitionedIrs::new(
        shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| vec![(format!("part{i}"), Shard(s))])
            .collect(),
        tight_config(),
    )
}

/// What the union index answers on one node, in the serving layer's
/// presentation order (score descending, OID ascending).
fn single_node_top_k(union: &IrsCollection, query: &str, k: usize) -> Vec<(Oid, f64)> {
    let mut hits: Vec<(Oid, f64)> = union
        .search_top_k(query, k)
        .unwrap()
        .into_iter()
        .filter_map(|h| Oid::parse(&h.key).map(|o| (o, h.score)))
        .collect();
    hits.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// THE partitioning property: for every corpus, model, partitionable
    /// operator shape, partition count and k, scatter/gather over
    /// round-robin document slices equals single-node evaluation of the
    /// union index — same OIDs, bitwise the same scores, same order.
    #[test]
    fn scatter_gather_is_bit_identical_to_single_node(
        docs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..40), 2..20),
        parts in 1usize..=4,
        model_choice in any::<u8>(),
        shape in any::<u8>(),
        (a, b, c) in (any::<u8>(), any::<u8>(), any::<u8>()),
        k in 0usize..15,
    ) {
        let query = query_for(shape, a, b, c);
        let union = build(&docs, 0..docs.len(), model_for(model_choice));
        let shards: Vec<Arc<FakeShard>> = (0..parts)
            .map(|p| {
                FakeShard::new(build(
                    &docs,
                    (0..docs.len()).filter(|i| i % parts == p),
                    model_for(model_choice),
                ))
            })
            .collect();
        let expected = single_node_top_k(&union, &query, k);
        let (hits, origin) = router(shards).search_top_k("coll", &query, k).unwrap();
        prop_assert_eq!(origin, ResultOrigin::Fresh);
        prop_assert_eq!(hits.len(), expected.len());
        for (got, want) in hits.iter().zip(expected.iter()) {
            prop_assert_eq!(got.0, want.0, "document set diverged for {}", query);
            prop_assert_eq!(got.1.to_bits(), want.1.to_bits(),
                "score mismatch for {} in {}", got.0, query);
        }
    }

    /// `get_irs_value` through the router equals the union index's score
    /// for every document — represented on *any* partition — and `0.0`
    /// for OIDs no partition knows.
    #[test]
    fn partitioned_value_matches_single_node(
        docs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..40), 2..12),
        parts in 1usize..=3,
        model_choice in any::<u8>(),
        term in any::<u8>(),
    ) {
        let query = VOCAB[term as usize % VOCAB.len()].to_string();
        let union = build(&docs, 0..docs.len(), model_for(model_choice));
        let shards: Vec<Arc<FakeShard>> = (0..parts)
            .map(|p| {
                FakeShard::new(build(
                    &docs,
                    (0..docs.len()).filter(|i| i % parts == p),
                    model_for(model_choice),
                ))
            })
            .collect();
        let r = router(shards);
        let expected = single_node_top_k(&union, &query, usize::MAX);
        for i in 0..docs.len() {
            let oid = Oid::parse(&key_of(i)).unwrap();
            let want = expected
                .iter()
                .find(|(o, _)| *o == oid)
                .map(|(_, s)| *s)
                .unwrap_or(0.0);
            let (got, origin) = r.get_irs_value("coll", &query, oid).unwrap();
            prop_assert_eq!(origin, ResultOrigin::Fresh);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "value for {}", oid);
        }
        let (absent, _) = r.get_irs_value("coll", &query, Oid(999_999)).unwrap();
        prop_assert_eq!(absent, 0.0);
    }
}

/// Queries outside the partitionable fragment fail permanently at the
/// stats leg — the router must not retry or serve stale for them.
#[test]
fn unpartitionable_queries_fail_permanently() {
    let docs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i, i + 1, 2]).collect();
    let shard = FakeShard::new(build(&docs, 0..docs.len(), ModelKind::default()));
    let r = router(vec![shard]);
    for query in ["#not(telnet)", "\"telnet gopher\"", "#near/2(telnet www)"] {
        let err = r.search_top_k("coll", query, 5).unwrap_err();
        assert!(
            !err.is_transient(),
            "{query} must classify permanent: {err}"
        );
    }
    assert_eq!(r.stats().stale_serves, 0);
}

/// Losing every replica of one partition: warmed queries degrade to the
/// full *merged* stale result (marked), cold queries fail transiently,
/// and at no point does a partial merge pass as a fresh answer.
#[test]
fn losing_one_partition_degrades_to_stale_never_partial() {
    let docs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i % 4, 2, i]).collect();
    let shards: Vec<Arc<FakeShard>> = (0..2)
        .map(|p| {
            FakeShard::new(build(
                &docs,
                (0..docs.len()).filter(|i| i % 2 == p),
                ModelKind::default(),
            ))
        })
        .collect();
    let union = build(&docs, 0..docs.len(), ModelKind::default());
    let expected = single_node_top_k(&union, "www", 8);
    assert!(!expected.is_empty(), "corpus sanity");

    let b = Arc::clone(&shards[1]);
    let r = router(shards);
    let (warm, origin) = r.search_top_k("coll", "www", 8).unwrap();
    assert_eq!(origin, ResultOrigin::Fresh);
    assert_eq!(warm, expected);

    b.down.store(true, Ordering::Relaxed);
    let (hits, origin) = r.search_top_k("coll", "www", 8).unwrap();
    assert_eq!(origin, ResultOrigin::Stale, "degradation must be marked");
    assert_eq!(hits, expected, "stale serves the complete merged result");

    let err = r
        .search_top_k("coll", "telnet", 8)
        .expect_err("cold query has nothing to fall back on");
    assert!(err.is_transient(), "outage classifies transient: {err}");

    let stats = r.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.stale_serves, 1);
    assert_eq!(stats.exhausted, 1);
    assert!(stats.scatter_failures >= 2, "failures counted: {stats:?}");
}

/// Carve the shared two-issue corpus into partition slices: every
/// partition system loads the *full* corpus (so OIDs are identical
/// everywhere), then deletes the paragraphs outside its slice from the
/// IRS collection. Returns the systems plus the paragraph OIDs.
fn carved_partitions(parts: usize) -> Vec<coupling::DocumentSystem> {
    (0..parts)
        .map(|p| {
            let sys = two_issue_system();
            let paras: Vec<Oid> = sys
                .query("ACCESS p FROM p IN PARA")
                .expect("enumerate paragraphs")
                .iter()
                .filter_map(|row| row.oid())
                .collect();
            assert_eq!(paras.len(), 4, "corpus sanity");
            let mut coll = sys.collection_mut("collPara").expect("collection");
            for (i, &oid) in paras.iter().enumerate() {
                if i % parts != p {
                    coll.on_delete(oid).expect("carve slice");
                }
            }
            drop(coll);
            sys
        })
        .collect()
}

/// End-to-end over TCP: two `ReplicaServer` partitions behind
/// `WireTransport`s answer bit-identically to a single-node evaluation,
/// and shutting one partition down degrades warmed queries to stale.
#[test]
fn tcp_partitions_serve_single_node_results_then_degrade() {
    let servers: Vec<ReplicaServer> = carved_partitions(2)
        .into_iter()
        .map(|sys| ReplicaServer::serve(sys, "127.0.0.1:0").expect("bind partition"))
        .collect();
    let groups = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![(
                format!("part{i}"),
                serve::WireTransport::new(s.local_addr()),
            )]
        })
        .collect();
    let r = PartitionedIrs::new(groups, tight_config());
    assert_eq!(r.group_count(), 2);
    assert!(
        r.probe().iter().flatten().all(|(_, up)| *up),
        "all partitions reachable"
    );

    // Single-node baseline: the *unsliced* system evaluated locally.
    let sys = two_issue_system();
    let coll = sys.collection("collPara").expect("collection");
    for query in ["telnet", "www", "#or(telnet www)", "#sum(www nii home)"] {
        let mut expected: Vec<(Oid, f64)> = coll
            .get_irs_result(query)
            .expect("local evaluation")
            .into_iter()
            .collect();
        expected.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let (hits, origin) = r.search_top_k("collPara", query, 10).expect(query);
        assert_eq!(origin, ResultOrigin::Fresh);
        assert_eq!(hits.len(), expected.len(), "{query}");
        for (got, want) in hits.iter().zip(expected.iter()) {
            assert_eq!(got.0, want.0, "{query}");
            assert_eq!(
                got.1.to_bits(),
                want.1.to_bits(),
                "score for {} in {query} diverged over the wire",
                got.0
            );
        }
        if let Some(&(oid, score)) = expected.first() {
            let (value, origin) = r.get_irs_value("collPara", query, oid).expect(query);
            assert_eq!(origin, ResultOrigin::Fresh);
            assert_eq!(value.to_bits(), score.to_bits());
        }
    }

    // One whole partition gone: warmed queries degrade to stale, cold
    // ones fail transiently.
    let warm = r.search_top_k("collPara", "telnet", 10).expect("warm");
    let mut servers = servers;
    servers.pop().unwrap().shutdown();
    let (hits, origin) = r
        .search_top_k("collPara", "telnet", 10)
        .expect("warmed query degrades, not fails");
    assert_eq!(origin, ResultOrigin::Stale);
    assert_eq!(hits, warm.0, "stale result is the last merged answer");
    let err = r
        .search_top_k("collPara", "gopher", 10)
        .expect_err("cold query cannot be merged");
    assert!(err.is_transient(), "outage classifies transient: {err}");

    for s in servers {
        s.shutdown();
    }
}
