//! Integration tests for the concurrent request front-end: multi-client
//! smoke traffic, deterministic overload rejection with a bounded queue,
//! degraded serving during an IRS outage, and per-request deadlines.

use std::sync::Arc;
use std::time::Duration;

use coupling::tasks::{Task, TaskKind, TaskStatus};
use coupling::{CollectionSetup, ErrorKind, MixedStrategy, TaskId};
use irs::FaultPlan;
use serve::{Request, Response, Server, ServerConfig};
use system_tests::two_issue_system;

/// Poll the server's task queue handle (not the request path, so the
/// wait does not disturb the request counters) until `id` is terminal.
fn wait_terminal(server: &Server, id: TaskId) -> Task {
    let queue = server.tasks().expect("writable server has a task queue");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let task = queue.task_status(id).expect("known task");
        if task.status.is_terminal() {
            return task;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "task {id} never reached a terminal status"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Multi-client smoke: several threads issue read requests concurrently,
/// a write flows through the task scheduler, and shutdown drains cleanly.
#[test]
fn multi_client_smoke_reads_and_writes() {
    let server = Server::start(
        two_issue_system(),
        ServerConfig::default().read_workers(4).queue_capacity(64),
    );
    let clients = 6;
    let per_client = 8;

    std::thread::scope(|scope| {
        for c in 0..clients {
            let server = &server;
            scope.spawn(move || {
                for i in 0..per_client {
                    match (c + i) % 3 {
                        0 => {
                            let resp = server
                                .call(Request::IrsQuery {
                                    collection: "collPara".into(),
                                    query: "telnet".into(),
                                })
                                .expect("query succeeds");
                            let Response::IrsResult { hits, .. } = resp else {
                                panic!("wrong response variant");
                            };
                            assert_eq!(hits.len(), 2, "both telnet paragraphs");
                        }
                        1 => {
                            let resp = server
                                .call(Request::MixedQuery {
                                    collection: "collPara".into(),
                                    class: "PARA".into(),
                                    irs_query: "www".into(),
                                    threshold: 0.45,
                                    strategy: MixedStrategy::IrsFirst,
                                })
                                .expect("mixed query succeeds");
                            let Response::Mixed { oids, .. } = resp else {
                                panic!("wrong response variant");
                            };
                            assert_eq!(oids.len(), 2, "both www paragraphs");
                        }
                        _ => {
                            let resp = server
                                .call(Request::IrsQuery {
                                    collection: "collPara".into(),
                                    query: "nii".into(),
                                })
                                .expect("query succeeds");
                            let Response::IrsResult { hits, .. } = resp else {
                                panic!("wrong response variant");
                            };
                            assert_eq!(hits.len(), 1);
                        }
                    }
                }
            });
        }
    });

    // A write through the task scheduler: enqueue answers immediately
    // with a task id; once the task reaches a terminal status the
    // updated paragraph is searchable (eager propagation).
    let para = server.system().read(|sys| {
        sys.query("ACCESS p FROM p IN PARA").unwrap()[0]
            .oid()
            .unwrap()
    });
    let resp = server
        .call(Request::EnqueueTask {
            kind: TaskKind::UpdateText {
                oid: para,
                text: "zeppelin airships over the network".into(),
                collections: vec!["collPara".into()],
            },
        })
        .expect("enqueue succeeds");
    let Response::TaskAccepted(task_id) = resp else {
        panic!("wrong response variant");
    };
    let task = wait_terminal(&server, task_id);
    assert_eq!(task.status, TaskStatus::Succeeded);
    let resp = server
        .call(Request::IrsQuery {
            collection: "collPara".into(),
            query: "zeppelin".into(),
        })
        .expect("query succeeds");
    let Response::IrsResult { hits, .. } = resp else {
        panic!("wrong response variant");
    };
    assert_eq!(hits.len(), 1, "write visible to reads after completion");

    let snapshot = server.shutdown();
    let total = (clients * per_client + 2) as u64;
    assert_eq!(snapshot.submitted, total);
    assert_eq!(snapshot.completed, total);
    assert_eq!(snapshot.failed, 0);
    assert_eq!(snapshot.rejected_overload, 0);
}

/// Bounded-queue admission control: with the workers wedged behind the
/// system write lock, the read queue fills and further submissions are
/// rejected with `Overloaded` instead of queueing without bound.
#[test]
fn overload_rejects_instead_of_queueing() {
    let workers = 2usize;
    let capacity = 2usize;
    let server = Server::start(
        two_issue_system(),
        ServerConfig::default()
            .read_workers(workers)
            .queue_capacity(capacity),
    );

    let total = capacity + workers + 2;
    // Hold the exclusive system lock: any worker that dequeues a read
    // blocks before touching the collection, so at most `workers` jobs
    // leave the queue and at most `capacity` wait in it.
    let tickets = server.system().write(|_sys| {
        (0..total)
            .map(|_| {
                server.submit(Request::IrsQuery {
                    collection: "collPara".into(),
                    query: "telnet".into(),
                })
            })
            .collect::<Vec<_>>()
    });

    let mut ok = 0;
    let mut overloaded = 0;
    for t in tickets {
        match t.wait() {
            Ok(_) => ok += 1,
            Err(e) => {
                assert_eq!(e.kind(), ErrorKind::Overloaded, "unexpected error {e}");
                overloaded += 1;
            }
        }
    }
    assert_eq!(ok + overloaded, total);
    assert!(
        overloaded >= 2,
        "at least the overflow beyond queue+workers is rejected ({overloaded})"
    );
    assert!(ok >= capacity, "accepted requests complete ({ok})");

    let snapshot = server.shutdown();
    assert_eq!(snapshot.rejected_overload, overloaded as u64);
    assert_eq!(snapshot.completed, ok as u64);
}

/// Fault injection: an IRS outage on one collection surfaces as
/// `IrsDown` while requests against a healthy collection keep working.
#[test]
fn irs_outage_fails_one_collection_not_the_server() {
    let mut sys = two_issue_system();
    sys.create_collection("collDown", CollectionSetup::default())
        .unwrap();
    sys.index_collection("collDown", "ACCESS p FROM p IN PARA")
        .unwrap();
    {
        let mut coll = sys.collection_mut("collDown").unwrap();
        let plan = Arc::new(FaultPlan::new(11));
        plan.set_down(true);
        coll.inject_faults(Some(plan));
    }

    let server = Server::start(sys, ServerConfig::default().read_workers(2));
    // Never-buffered query on the dead collection: no stale copy exists,
    // so the outage surfaces as a typed transient error.
    let err = server
        .call(Request::IrsQuery {
            collection: "collDown".into(),
            query: "telnet".into(),
        })
        .expect_err("outage surfaces");
    assert_eq!(err.kind(), ErrorKind::IrsDown);

    // The healthy collection is unaffected.
    let resp = server
        .call(Request::IrsQuery {
            collection: "collPara".into(),
            query: "telnet".into(),
        })
        .expect("healthy collection serves");
    let Response::IrsResult { hits, .. } = resp else {
        panic!("wrong response variant");
    };
    assert_eq!(hits.len(), 2);

    let snapshot = server.shutdown();
    assert_eq!(snapshot.failed, 1);
    assert_eq!(snapshot.completed, 1);
}

/// Per-request deadlines: a request that waits in the queue past its
/// deadline is answered with `Timeout` instead of being executed late.
#[test]
fn expired_deadline_yields_timeout() {
    let sys = two_issue_system();
    {
        // Make the single worker slow: every IRS op sleeps, modeling a
        // remote IRS, so a queued request provably outwaits its deadline.
        let mut coll = sys.collection_mut("collPara").unwrap();
        coll.inject_faults(Some(Arc::new(
            FaultPlan::new(3).with_latency(Duration::from_millis(40)),
        )));
    }
    let server = Server::start(
        sys,
        ServerConfig::default().read_workers(1).queue_capacity(8),
    );

    // Occupy the only worker, then queue a request with a deadline far
    // below the time it will spend waiting.
    let slow = server.submit(Request::IrsQuery {
        collection: "collPara".into(),
        query: "telnet".into(),
    });
    let doomed = server.submit_with_deadline(
        Request::IrsQuery {
            collection: "collPara".into(),
            query: "www".into(),
        },
        Duration::from_millis(1),
    );
    assert!(slow.wait().is_ok(), "slow request still completes");
    let err = doomed.wait().expect_err("deadline expired in queue");
    assert_eq!(err.kind(), ErrorKind::Timeout);

    let snapshot = server.shutdown();
    assert_eq!(snapshot.deadline_timeouts, 1);
}
