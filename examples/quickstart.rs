//! Quickstart: load SGML documents, couple an IRS collection, and run
//! the paper's mixed structure/content queries.
//!
//! ```text
//! cargo run -p coupling-examples --example quickstart
//! ```

use coupling::prelude::*;
use sgml::mmf::telnet_example;

fn main() {
    // 1. A fresh integrated system: OODBMS + coupling classes.
    let mut sys = DocumentSystem::new();

    // 2. Load SGML documents. Every element becomes a database object;
    //    element-type classes (MMFDOC, PARA, …) appear automatically.
    sys.load_sgml(telnet_example())
        .expect("telnet document loads");
    sys.load_sgml(
        "<MMFDOC YEAR=\"1994\"><DOCTITLE>Networking special</DOCTITLE>\
         <PARA>The WWW is growing explosively across the internet</PARA>\
         <PARA>The NII initiative will connect the WWW to every home</PARA>\
         </MMFDOC>",
    )
    .expect("networking document loads");

    // 3. Create an IRS collection whose members are chosen by a
    //    specification query — here: every paragraph. The builder keeps
    //    per-collection tuning (derivation, buffering, …) in one place.
    sys.create_collection(
        "collPara",
        CollectionSetup::builder()
            .derivation(DerivationScheme::SubqueryAware)
            .build(),
    )
    .expect("collection created");
    let indexed = sys
        .index_collection("collPara", "ACCESS p FROM p IN PARA")
        .expect("indexing succeeds");
    println!("indexed {indexed} paragraphs into collPara\n");

    // 4. The paper's first example query (Section 4.4): content-based
    //    selection inside the OODBMS query language.
    let rows = sys
        .query(
            "ACCESS p, p -> getText(1), p -> getIRSValue(collPara, 'WWW') \
             FROM p IN PARA \
             WHERE p -> getIRSValue(collPara, 'WWW') > 0.45",
        )
        .expect("mixed query runs");
    println!("paragraphs relevant to 'WWW':");
    for row in &rows {
        println!(
            "  {} (IRS value {:.3}): {}",
            row.col(0),
            row.col(2).as_f64().unwrap_or(0.0),
            row.col(1).as_str().unwrap_or("")
        );
    }

    // 5. The paper's second example: structure + content join.
    let rows = sys
        .query(
            "ACCESS d \
             FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA \
             WHERE d -> getAttributeValue('YEAR') = '1994' AND \
             p1 -> getNext() == p2 AND \
             p1 -> getContaining('MMFDOC') == d AND \
             p1 -> getIRSValue(collPara, 'WWW') > 0.4 AND \
             p2 -> getIRSValue(collPara, 'NII') > 0.4",
        )
        .expect("join query runs");
    println!("\n1994 documents with a WWW paragraph followed by an NII paragraph:");
    for row in &rows {
        let root = row.oid().expect("object row");
        println!("  {}", coupling_examples::title_of(sys.db(), root));
    }

    // 6. Documents are NOT in collPara — getIRSValue derives their value
    //    from paragraph values (deriveIRSValue, paper Section 4.5.2).
    let rows = sys
        .query(
            "ACCESS d, d -> getIRSValue(collPara, 'telnet') \
             FROM d IN MMFDOC",
        )
        .expect("derivation query runs");
    println!("\nderived document-level relevance to 'telnet':");
    for row in &rows {
        let root = row.oid().expect("object row");
        println!(
            "  {} -> {:.3}",
            coupling_examples::title_of(sys.db(), root),
            row.col(1).as_f64().unwrap_or(0.0)
        );
    }
}
