//! Relevance feedback (paper Section 6 open issue): the user marks
//! results as relevant; the query is expanded Rocchio-style and re-run —
//! entirely through the ordinary query path, because expanded queries
//! are just IRS query strings.
//!
//! ```text
//! cargo run -p coupling-examples --example relevance_feedback
//! ```

use coupling::prelude::*;
use irs::feedback::{expand_query, FeedbackConfig};

fn main() {
    let mut sys = DocumentSystem::new();
    let docs = [
        (
            "Remote access",
            "telnet gives terminal access to remote hosts",
        ),
        ("Unix tools", "telnet terminal emulation for unix systems"),
        (
            "Multiplexers",
            "terminal multiplexers improve programmer productivity",
        ),
        ("Web", "the www links hypertext documents across the planet"),
        ("Databases", "database transactions need recovery logs"),
        ("Gopher", "gopher menus predate the web by years"),
    ];
    for (title, text) in docs {
        sys.load_sgml(&format!(
            "<MMFDOC><DOCTITLE>{title}</DOCTITLE><PARA>{text}</PARA></MMFDOC>"
        ))
        .expect("document loads");
    }
    sys.create_collection("collPara", CollectionSetup::default())
        .expect("collection created");
    sys.index_collection("collPara", "ACCESS p FROM p IN PARA")
        .expect("indexed");

    // Initial query.
    let initial = "telnet";
    let hits = sys
        .collection("collPara")
        .expect("collection exists")
        .get_irs_result(initial)
        .expect("query");
    println!("initial query {initial:?}: {} hits", hits.len());

    // The user marks the two telnet paragraphs as relevant. Feedback
    // needs the IRS-level document keys — the OIDs of those paragraphs.
    let mut relevant: Vec<String> = hits.keys().map(|oid| oid.to_string()).collect();
    relevant.sort();
    let relevant_refs: Vec<&str> = relevant.iter().map(String::as_str).collect();

    let expanded = {
        let coll = sys.collection("collPara").expect("collection exists");
        expand_query(
            coll.irs(),
            initial,
            &relevant_refs,
            &FeedbackConfig::default(),
        )
        .expect("expansion succeeds")
    };
    println!("expanded query: {expanded}");

    // Re-run through the coupling: the terminal-multiplexer paragraph —
    // unreachable by the literal query — now surfaces.
    let before = sys
        .query(&format!(
            "ACCESS p -> getText(1) FROM p IN PARA \
             WHERE p -> getIRSValue(collPara, '{initial}') > 0.4"
        ))
        .expect("query runs");
    let after = sys
        .query(&format!(
            "ACCESS p -> getText(1), p -> getIRSValue(collPara, '{q}') FROM p IN PARA \
             WHERE p -> getIRSValue(collPara, '{q}') > 0.4 \
             ORDER BY p -> getIRSValue(collPara, '{q}') DESC",
            q = expanded.replace('\'', "''")
        ))
        .expect("expanded query runs");

    println!("\nbefore feedback ({} paragraphs):", before.len());
    for row in &before {
        println!("  {}", row.col(0).as_str().unwrap_or(""));
    }
    println!("\nafter feedback ({} paragraphs):", after.len());
    for row in &after {
        println!(
            "  {:.3}  {}",
            row.col(1).as_f64().unwrap_or(0.0),
            row.col(0).as_str().unwrap_or("")
        );
    }
}
