//! Derivation-scheme tuning: reconstructs the paper's Figure 4 example
//! and shows how the choice of deriveIRSValue implementation changes
//! which documents a content query returns.
//!
//! ```text
//! cargo run -p coupling-examples --example derivation_tuning
//! ```

use coupling::prelude::*;

/// Equal-length paragraph with the given topical terms injected.
fn para(terms: &[&str]) -> String {
    let mut words: Vec<String> = (0..20).map(|i| format!("filler{i:02}")).collect();
    for (i, t) in terms.iter().enumerate() {
        words[3 + 5 * i] = (*t).to_string();
    }
    format!("<PARA>{}</PARA>", words.join(" "))
}

fn main() {
    let mut sys = DocumentSystem::new();

    // Figure 4's documents: M2 contains the only paragraph relevant to
    // both WWW and NII; M3 carries the terms in separate paragraphs; M4
    // carries one term twice; M1 only WWW.
    let m_bodies = [
        format!("{}{}{}", para(&["www"]), para(&["www"]), para(&[])),
        format!("{}{}{}", para(&["www", "nii"]), para(&[]), para(&[])),
        format!("{}{}", para(&["www"]), para(&["nii"])),
        format!("{}{}{}", para(&["nii"]), para(&["nii"]), para(&[])),
    ];
    let mut roots = Vec::new();
    for (i, body) in m_bodies.iter().enumerate() {
        let doc = format!("<MMFDOC><DOCTITLE>M{}</DOCTITLE>{}</MMFDOC>", i + 1, body);
        roots.push(sys.load_sgml(&doc).expect("figure 4 doc loads").root);
    }

    // Only paragraphs are represented in the IRS collection; documents
    // must derive their values.
    sys.create_collection("collPara", CollectionSetup::default())
        .expect("fresh");
    sys.index_collection("collPara", "ACCESS p FROM p IN PARA")
        .expect("indexed");

    let query = "#and(www nii)";
    println!("query: {query}\n");
    println!(
        "{:<18} {:>7} {:>7} {:>7} {:>7}",
        "scheme", "M1", "M2", "M3", "M4"
    );
    let schemes = [
        ("max [CST92]", DerivationScheme::Max),
        ("avg [CST92]", DerivationScheme::Avg),
        ("sum", DerivationScheme::Sum),
        ("length-weighted", DerivationScheme::LengthWeighted),
        ("subquery-aware", DerivationScheme::SubqueryAware),
    ];
    for (label, scheme) in schemes {
        let values = {
            let mut coll = sys.collection_mut("collPara").expect("collection exists");
            coll.set_derivation(scheme.clone());
            let ctx = coll.db().method_ctx();
            roots
                .iter()
                .map(|&r| coll.get_irs_value(&ctx, query, r).expect("derives"))
                .collect::<Vec<f64>>()
        };
        println!(
            "{:<18} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            label, values[0], values[1], values[2], values[3]
        );
    }

    println!(
        "\nthe paper's point (Section 4.5.2): max cannot separate M3 (relevant to \
         \nboth terms, in different paragraphs) from M4 (one term twice); the \
         \nsubquery-aware scheme identifies the per-term subqueries and recovers M3."
    );
}
