//! Hypermedia extension (paper Section 5): `implies` links contribute
//! their source text to the target's IRS document, and non-indexed
//! hypertext nodes derive IRS values across the link structure.
//!
//! ```text
//! cargo run -p coupling-examples --example hypermedia_links
//! ```

use coupling::prelude::*;
use oodb::Value;

fn main() {
    let mut sys = DocumentSystem::new();

    // Three hypertext nodes. Node C never mentions 'telnet' itself, but
    // two nodes assert an implies-relationship towards it.
    let a = sys
        .load_sgml("<NODE><PARA>telnet is the classic remote login protocol</PARA></NODE>")
        .expect("node A loads");
    let b = sys
        .load_sgml("<NODE><PARA>telnet sessions run over tcp port 23</PARA></NODE>")
        .expect("node B loads");
    let c = sys
        .load_sgml("<NODE><PARA>interactive terminal access to remote hosts</PARA></NODE>")
        .expect("node C loads");

    // Wire implies-links: A → C and B → C (A's and B's text "implies"
    // the topic of C).
    let (pa, pb, pc) = (a.elements[1].1, b.elements[1].1, c.elements[1].1);
    let mut txn = sys.db_mut().begin();
    sys.db_mut()
        .set_attr(&mut txn, pa, "implies", Value::List(vec![Value::Oid(pc)]))
        .expect("link A→C");
    sys.db_mut()
        .set_attr(&mut txn, pb, "implies", Value::List(vec![Value::Oid(pc)]))
        .expect("link B→C");
    sys.db_mut().commit(txn).expect("commit");

    // Two collections over the same paragraphs: plain text vs
    // link-augmented text.
    sys.create_collection("plain", CollectionSetup::default())
        .expect("fresh");
    sys.index_collection("plain", "ACCESS p FROM p IN PARA")
        .expect("indexed");
    sys.create_collection(
        "augmented",
        CollectionSetup::builder()
            .text_mode(TextMode::LinkAugmented {
                link_attr: "implies".into(),
            })
            .build(),
    )
    .expect("fresh");
    sys.index_collection("augmented", "ACCESS p FROM p IN PARA")
        .expect("indexed");

    for coll in ["plain", "augmented"] {
        let result = sys
            .collection(coll)
            .expect("collection exists")
            .get_irs_result("telnet")
            .expect("query evaluates");
        println!(
            "collection {coll:>9}: 'telnet' matches {} nodes",
            result.len()
        );
        let c_value = result.get(&pc).copied().unwrap_or(0.0);
        println!(
            "  node C (no literal 'telnet' in its text) scores {:.3}{}",
            c_value,
            if c_value > 0.0 {
                "  ← found via implies-links"
            } else {
                ""
            }
        );
    }

    // Mixed query over the augmented collection: hypertext retrieval in
    // the database query language.
    let rows = sys
        .query(
            "ACCESS p, p -> getIRSValue(augmented, 'telnet') FROM p IN PARA \
             WHERE p -> getIRSValue(augmented, 'telnet') > 0.4",
        )
        .expect("query runs");
    println!("\nnodes relevant to 'telnet' through the augmented collection:");
    for row in &rows {
        println!(
            "  {} -> {:.3}",
            row.col(0),
            row.col(1).as_f64().unwrap_or(0.0)
        );
    }
}
