//! The MultiMedia Forum scenario: a generated journal corpus with
//! overlapping collections, different text modes, derived document
//! ranking, and deferred update propagation — the paper's full workflow.
//!
//! ```text
//! cargo run -p coupling-examples --example mmf_journal
//! ```

use coupling::prelude::*;
use coupling_examples::title_of;
use oodb::Value;
use sgml::gen::topic_term;
use sgml::{CorpusConfig, CorpusGenerator};

fn main() {
    // Generate a small journal (the stand-in for the proprietary MMF
    // corpus; see DESIGN.md).
    let mut generator = CorpusGenerator::new(CorpusConfig {
        docs: 20,
        topics: 6,
        vocabulary: 600,
        ..CorpusConfig::default()
    });
    let corpus = generator.generate_corpus();

    let mut sys = DocumentSystem::new();
    for doc in &corpus {
        sys.load_generated(doc).expect("documents load");
    }
    println!(
        "loaded {} documents, {} objects total",
        corpus.len(),
        sys.db().store().len()
    );

    // Overlapping collections with different text representations
    // (paper Section 4.2: the textMode parameter).
    sys.create_collection("collPara", CollectionSetup::default())
        .expect("fresh");
    sys.index_collection("collPara", "ACCESS p FROM p IN PARA")
        .expect("paragraphs indexed");
    sys.create_collection(
        "collTitles",
        CollectionSetup::builder()
            .text_mode(TextMode::TitlesOnly)
            .build(),
    )
    .expect("fresh");
    sys.index_collection("collTitles", "ACCESS d FROM d IN MMFDOC")
        .expect("titles indexed");
    println!("collections: {:?}\n", sys.collection_names());

    // Content search over titles vs full paragraphs.
    let topic = topic_term(0);
    for coll in ["collPara", "collTitles"] {
        let n = sys
            .collection(coll)
            .expect("collection exists")
            .get_irs_result(&topic)
            .expect("query evaluates")
            .len();
        println!("'{topic}' matches {n} IRS documents in {coll}");
    }

    // Derived document ranking with the subquery-aware scheme.
    sys.collection_mut("collPara")
        .expect("collection exists")
        .set_derivation(DerivationScheme::SubqueryAware);
    let query = format!("#and({} {})", topic_term(0), topic_term(1));
    // Ranking straight from the query language: ORDER BY a derived IRS
    // value, LIMIT to the top five.
    let ranking = sys
        .query(&format!(
            "ACCESS d, d -> getIRSValue(collPara, '{query}') FROM d IN MMFDOC \
             ORDER BY d -> getIRSValue(collPara, '{query}') DESC LIMIT 5"
        ))
        .expect("ranking query runs");
    println!("\ntop documents for {query} (derived from paragraph values):");
    for row in &ranking {
        let oid = row.oid().expect("object row");
        let score = row.col(1).as_f64().unwrap_or(0.0);
        println!("  {:.3}  {}", score, title_of(sys.db(), oid));
    }

    // The editorial team updates a paragraph; propagation is deferred
    // and forced before the next query (paper Section 4.6).
    let some_para = sys.query("ACCESS p FROM p IN PARA").expect("query runs")[0]
        .oid()
        .expect("object row");
    let mut txn = sys.db_mut().begin();
    sys.db_mut()
        .set_attr(
            &mut txn,
            some_para,
            "text",
            Value::from(format!("editorial correction mentioning {}", topic_term(5)).as_str()),
        )
        .expect("update applies");
    sys.db_mut().commit(txn).expect("commit");

    let mut propagator = Propagator::new(PropagationStrategy::Deferred);
    {
        let mut coll = sys.collection_mut("collPara").expect("collection exists");
        let ctx = coll.db().method_ctx();
        propagator
            .record(&ctx, &mut coll, PendingOp::Modify(some_para))
            .expect("recorded");
        println!(
            "\nrecorded 1 deferred update (pending: {})",
            propagator.pending().len()
        );
        // The next information-need query forces the flush.
        propagator.before_query(&ctx, &mut coll).expect("flushed");
        let hits = coll
            .get_irs_result(&topic_term(5))
            .expect("query evaluates");
        println!(
            "after forced propagation, '{}' also matches the corrected paragraph: {}",
            topic_term(5),
            hits.contains_key(&some_para)
        );
    }

    let (stats, buf) = {
        let coll = sys.collection("collPara").expect("collection exists");
        (coll.stats(), coll.buffer_stats())
    };
    println!("\ncoupling stats: {stats:?}");
    println!("buffer stats:   {buf:?}");
}
