//! Shared helpers for the runnable examples.

use oodb::{Database, Oid, Value};

/// The DOCTITLE text of a document root, for display.
pub fn title_of(db: &Database, root: Oid) -> String {
    let Ok(children) = db.get_attr(root, "children") else {
        return root.to_string();
    };
    let Some(kids) = children.as_list() else {
        return root.to_string();
    };
    for kid in kids {
        let Some(oid) = kid.as_oid() else { continue };
        let Ok(obj) = db.object(oid) else { continue };
        if db.schema().name(obj.class) == "DOCTITLE" {
            if let Some(Value::Str(t)) = obj.attr_ref("text") {
                return t.clone();
            }
        }
    }
    root.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn title_of_finds_doctitle() {
        let mut sys = coupling::DocumentSystem::new();
        let loaded = sys
            .load_sgml("<MMFDOC><DOCTITLE>Telnet</DOCTITLE><PARA>x</PARA></MMFDOC>")
            .unwrap();
        assert_eq!(title_of(sys.db(), loaded.root), "Telnet");
    }

    #[test]
    fn title_of_falls_back_to_oid() {
        let mut sys = coupling::DocumentSystem::new();
        let loaded = sys.load_sgml("<MMFDOC><PARA>x</PARA></MMFDOC>").unwrap();
        assert_eq!(title_of(sys.db(), loaded.root), loaded.root.to_string());
    }
}
